//! The audit service: JSON requests in, engine-backed verdicts out.
//!
//! One [`AuditService`] lives for the whole server process and is shared by
//! every connection handler. Since the dataset-handle redesign it is a
//! **resource manager over [`DatasetSession`]s**:
//!
//! * `POST /tables` registers a dataset (table + hierarchies) once — one
//!   scan builds the shared roll-up evaluator — and returns a
//!   content-fingerprint handle; `/tables/{id}/audit|search|batch|release|
//!   composition` then run against that session **without ever re-parsing
//!   or re-scanning**. Registering identical content returns the existing
//!   handle.
//! * The session store and the per-`k` [`EngineRegistry`] both sit under
//!   group-weighted LRU budgets, so a long-lived server is memory-bounded;
//!   an evicted handle answers a clean 404 (re-register to continue).
//! * The one-shot endpoints (`POST /audit`, `POST /search`) are
//!   reimplemented as *register → run → drop* over transient sessions —
//!   same engine registry, bit-identical results (pinned by the
//!   integration tests).
//!
//! Results are **bit-identical** to the CLI `audit`/`search` paths: tables
//! are built with the same schema rules, bucketized by the same grouping,
//! and judged by the same engine code — only the transport differs (JSON
//! numbers serialize via shortest-round-trip formatting, so not even the
//! last bit of an `f64` is lost).

use std::collections::HashMap;
use std::io::BufReader;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use wcbk_anonymize::{
    default_threads, AuditReport, CkSafetyCriterion, DatasetSession, ModelAuditReport, ModelId,
    ModelSafetyCriterion, PrivacyCriterion, Schedule, SearchConfig, SearchReport, SessionOptions,
    MODEL_NAMES,
};
use wcbk_core::EngineRegistry;
use wcbk_hierarchy::{GenNode, GeneralizationLattice, Hierarchy, RollupStats};
use wcbk_store::{DatasetStore, StoreError};
use wcbk_table::csv::RecordSplitter;
use wcbk_table::{Attribute, AttributeKind, ChunkedTableBuilder, Schema, Table};

use crate::json::Json;
use crate::persist;

/// A request the service could not satisfy.
#[derive(Debug)]
pub enum ServeError {
    /// The client's request is invalid (missing fields, bad CSV, unknown
    /// columns, parameters out of range) — an HTTP 400.
    BadRequest(String),
    /// The addressed table handle does not exist (never registered, dropped,
    /// or evicted under the session budget) — an HTTP 404.
    UnknownTable(String),
    /// The durable store failed (I/O error persisting, corrupt catalog
    /// payload on rehydration) — an HTTP 500. The request was valid; the
    /// server could not durably honor it.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "{m}"),
            ServeError::UnknownTable(id) => write!(f, "no table registered under {id:?}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest(message.into())
}

/// Parses a handle id back to its fingerprint. Handles are minted by
/// `format!("{:016x}", fp)`, so only exactly-16 lowercase hex digits can
/// name a catalog entry — anything else is unknown without touching disk.
fn parse_handle(id: &str) -> Option<u64> {
    if id.len() != 16
        || !id
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(id, 16).ok()
}

/// Memory budgets for a long-lived service; `Default` is fully unbounded
/// (the one-shot behavior).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceLimits {
    /// MINIMIZE1 cache budget (groups) for every engine the registry
    /// creates — `wcbk serve --engine-cache-cap`.
    pub engine_cache_cap: Option<u64>,
    /// Registry budget (total retained groups across per-`k` engines);
    /// past it, least-recently-requested engines are dropped.
    pub engine_budget: Option<u64>,
    /// Session-store budget (Σ per-session bottom-group weight); past it,
    /// least-recently-used handles are evicted (→ 404 until re-registered).
    pub session_budget: Option<u64>,
}

/// Accumulated roll-up counters across every search the service ran.
#[derive(Default)]
struct RollupTotals {
    searches: AtomicU64,
    table_scans: AtomicU64,
    derived: AtomicU64,
    ancestor_derived: AtomicU64,
    memo_hits: AtomicU64,
    evictions: AtomicU64,
    /// Largest retained memo weight (groups) any single search reached.
    peak_memo_groups: AtomicU64,
    /// Cumulative bottom-scan wall time across absorbed sessions.
    scan_micros: AtomicU64,
    /// Cumulative node-derivation wall time across absorbed sessions.
    derive_micros: AtomicU64,
}

impl RollupTotals {
    fn absorb(&self, stats: &RollupStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.table_scans
            .fetch_add(stats.table_scans, Ordering::Relaxed);
        self.derived.fetch_add(stats.derived, Ordering::Relaxed);
        self.ancestor_derived
            .fetch_add(stats.ancestor_derived, Ordering::Relaxed);
        self.memo_hits.fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.evictions.fetch_add(stats.evictions, Ordering::Relaxed);
        self.peak_memo_groups
            .fetch_max(stats.memo_groups, Ordering::Relaxed);
        self.scan_micros
            .fetch_add(stats.scan_micros, Ordering::Relaxed);
        self.derive_micros
            .fetch_add(stats.derive_micros, Ordering::Relaxed);
    }
}

/// A registered session plus the store's bookkeeping for it.
struct StoredSession {
    id: String,
    session: Arc<DatasetSession>,
    /// Column names echoed back by `GET /tables/{id}`.
    qi: Vec<String>,
    sensitive: String,
    /// LRU weight: the session's bottom group count (the scan's resident
    /// output — its dominant memory cost), or the row count when the
    /// signature-overflow fallback left no evaluator.
    weight: u64,
    touch: AtomicU64,
}

/// The handle → session map under a group-weighted LRU budget.
struct SessionStore {
    inner: RwLock<HashMap<String, Arc<StoredSession>>>,
    budget: Option<u64>,
    clock: AtomicU64,
    evictions: AtomicU64,
    /// Registrations that created a new session (dedup hits excluded).
    registered: AtomicU64,
    /// Sessions rebuilt from the durable catalog (restart or post-eviction
    /// reload) — these are not new registrations.
    rehydrated: AtomicU64,
    /// High-water mark of Σ resident session weight (groups), sampled at
    /// insert time — where the total can only have grown — and surviving
    /// every later eviction.
    peak_groups: AtomicU64,
}

impl SessionStore {
    fn new(budget: Option<u64>) -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            budget: budget.map(|b| b.max(1)),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            registered: AtomicU64::new(0),
            rehydrated: AtomicU64::new(0),
            peak_groups: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn get(&self, id: &str) -> Option<Arc<StoredSession>> {
        let inner = self.inner.read().expect("session store poisoned");
        inner.get(id).map(|s| {
            s.touch.store(self.tick(), Ordering::Relaxed);
            Arc::clone(s)
        })
    }

    /// Inserts (or dedups onto) `stored`, returning `(session, created)`.
    /// A dedup hit must hold the **same dataset**, not merely the same
    /// 64-bit fingerprint — FNV-1a is not collision-resistant, and silently
    /// merging distinct datasets would serve one table's verdicts for the
    /// other. Past the budget, least-recently-used **other** handles are
    /// evicted — the handle just registered always survives, so one big
    /// dataset can exceed the budget rather than thrash.
    fn insert(
        &self,
        stored: StoredSession,
        rehydrated: bool,
    ) -> Result<(Arc<StoredSession>, bool), ServeError> {
        let id = stored.id.clone();
        let mut inner = self.inner.write().expect("session store poisoned");
        if let Some(existing) = inner.get(&id) {
            if !existing.session.same_dataset(&stored.session) {
                return Err(bad(format!(
                    "fingerprint collision: handle {id} already holds a different dataset; \
                     change the table or hierarchies and re-register"
                )));
            }
            existing.touch.store(self.tick(), Ordering::Relaxed);
            return Ok((Arc::clone(existing), false));
        }
        stored.touch.store(self.tick(), Ordering::Relaxed);
        let stored = Arc::new(stored);
        inner.insert(id.clone(), Arc::clone(&stored));
        let resident: u64 = inner.values().map(|s| s.weight).sum();
        self.peak_groups.fetch_max(resident, Ordering::Relaxed);
        if rehydrated {
            self.rehydrated.fetch_add(1, Ordering::Relaxed);
        } else {
            self.registered.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(budget) = self.budget {
            while inner.len() > 1 {
                let total: u64 = inner.values().map(|s| s.weight).sum();
                if total <= budget {
                    break;
                }
                let victim = inner
                    .iter()
                    .filter(|(vid, _)| **vid != id)
                    .min_by_key(|(_, s)| s.touch.load(Ordering::Relaxed))
                    .map(|(vid, _)| vid.clone());
                match victim {
                    Some(vid) => {
                        inner.remove(&vid);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        Ok((stored, true))
    }

    fn remove(&self, id: &str) -> bool {
        self.inner
            .write()
            .expect("session store poisoned")
            .remove(id)
            .is_some()
    }

    fn snapshot(&self) -> Vec<Arc<StoredSession>> {
        let inner = self.inner.read().expect("session store poisoned");
        let mut all: Vec<Arc<StoredSession>> = inner.values().cloned().collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }
}

/// Shared per-process audit state — see the module docs.
pub struct AuditService {
    /// One shared engine per attacker power `k`, budget-bounded.
    engines: Arc<EngineRegistry>,
    sessions: SessionStore,
    /// Durable catalog. `None` (no `--data-dir`) keeps the classic
    /// in-memory-only behavior, bit-for-bit.
    store: Option<Arc<DatasetStore>>,
    rollup: RollupTotals,
    audits: AtomicU64,
    searches: AtomicU64,
    batches: AtomicU64,
    batch_tables: AtomicU64,
    bad_requests: AtomicU64,
    /// Requests answered per adversary model, indexed
    /// `[ModelId::index()][ModelOp as usize]` — the source for the
    /// `wcbk_model_requests_total{model,op}` metric family.
    model_ops: [[AtomicU64; 3]; 4],
}

/// The operations the per-model counters distinguish.
#[derive(Clone, Copy)]
enum ModelOp {
    Audit = 0,
    Search = 1,
    Composition = 2,
}

/// Names for the per-model operations (`ModelOp`), indexed by
/// discriminant — the metric label set.
pub const MODEL_OPS: [&str; 3] = ["audit", "search", "composition"];

impl Default for AuditService {
    fn default() -> Self {
        Self::new()
    }
}

impl AuditService {
    /// Creates an unbounded service (engines and sessions materialize on
    /// first use and are never evicted).
    pub fn new() -> Self {
        Self::with_limits(ServiceLimits::default())
    }

    /// Creates a service under explicit memory budgets.
    pub fn with_limits(limits: ServiceLimits) -> Self {
        Self {
            engines: Arc::new(EngineRegistry::with_limits(
                limits.engine_cache_cap,
                limits.engine_budget,
            )),
            sessions: SessionStore::new(limits.session_budget),
            store: None,
            rollup: RollupTotals::default(),
            audits: AtomicU64::new(0),
            searches: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_tables: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            model_ops: Default::default(),
        }
    }

    /// Bumps the per-model request counter for `op`.
    fn count_model(&self, model: ModelId, op: ModelOp) {
        self.model_ops[model.index()][op as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// [`AuditService::with_limits`] backed by a durable catalog: new
    /// registrations and releases are persisted through `store`, and
    /// handles it already holds are served again — lazily rebuilt on first
    /// touch — instead of 404ing after a restart or an LRU eviction.
    pub fn with_store(limits: ServiceLimits, store: Arc<DatasetStore>) -> Self {
        let mut service = Self::with_limits(limits);
        service.store = Some(store);
        service
    }

    /// The durable catalog, when one is attached.
    pub fn store(&self) -> Option<&Arc<DatasetStore>> {
        self.store.as_ref()
    }

    /// The shared engine for attacker power `k`, created on first request.
    pub fn engine(&self, k: usize) -> Arc<wcbk_core::DisclosureEngine> {
        self.engines.engine(k)
    }

    /// Builds a [`DatasetSession`] from a request body (table + qi +
    /// hierarchies + optional `memo_cap`), on the service's shared engine
    /// registry. Both `POST /tables` and the one-shot endpoints
    /// (register → run → drop) construct through here, which is what makes
    /// their results bit-identical.
    fn build_session(
        &self,
        request: &Json,
    ) -> Result<(DatasetSession, Vec<String>, String), ServeError> {
        let table = table_from_request(request)?;
        self.session_from_table(table, request)
    }

    /// Builds a session from an already-constructed table plus the request
    /// parameters (qi, hierarchies, memo/scan knobs) — the tail of
    /// [`build_session`](Self::build_session), shared with the streamed
    /// wire-CSV upload path so both produce identical sessions.
    fn session_from_table(
        &self,
        table: Table,
        request: &Json,
    ) -> Result<(DatasetSession, Vec<String>, String), ServeError> {
        let sensitive = request
            .get("sensitive")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"sensitive\" column name"))?
            .to_owned();
        let qi_names = string_list(request, "qi")?;
        let lattice = build_lattice(&table, &qi_names, request)?;
        let memo_capacity = match optional_usize(request, "memo_cap")? {
            Some(n) => Some(n),
            None => optional_usize(request, "memo-cap")?,
        };
        let scan_threads = optional_usize(request, "scan_threads")?
            .unwrap_or(0)
            .min(default_threads());
        let session = DatasetSession::with_options(
            table,
            lattice,
            SessionOptions {
                memo_capacity,
                engines: Some(Arc::clone(&self.engines)),
                scan_threads,
            },
        )
        .map_err(|e| bad(e.to_string()))?;
        Ok((session, qi_names, sensitive))
    }

    /// Handles `POST /tables`: register the dataset once, returning its
    /// content-fingerprint handle. Registering identical content returns
    /// the existing handle (`"created": false`) without rebuilding.
    pub fn register_table(&self, request: &Json) -> Result<Json, ServeError> {
        let (session, qi, sensitive) = self.build_session(request)?;
        self.register_session(session, qi, sensitive)
    }

    /// Finalizes a wire-streamed CSV upload ([`CsvUpload`]): builds the
    /// table the upload decoded incrementally off the socket, then
    /// registers it exactly as `POST /tables` with a JSON body would — the
    /// handle is the content fingerprint, so a chunked upload of the same
    /// data resolves to the **same id** as a buffered registration.
    pub fn register_upload(&self, upload: CsvUpload) -> Result<Json, ServeError> {
        let params = upload.params;
        let builder = match upload.state {
            UploadState::Failed(e) => return Err(e),
            UploadState::AwaitingHeader => return Err(bad("csv is empty")),
            UploadState::Building { builder } => builder,
        };
        let table = builder.build();
        if table.n_rows() == 0 {
            return Err(bad("table has no rows"));
        }
        let (session, qi, sensitive) = self.session_from_table(table, &params)?;
        self.register_session(session, qi, sensitive)
    }

    /// Stores a built session and renders the registration response.
    fn register_session(
        &self,
        session: DatasetSession,
        qi: Vec<String>,
        sensitive: String,
    ) -> Result<Json, ServeError> {
        let weight = session
            .rollup_stats()
            .map(|s| s.bottom_groups as u64)
            .unwrap_or(session.table().n_rows() as u64)
            .max(1);
        let id = format!("{:016x}", session.fingerprint());
        let rows = session.table().n_rows();
        let buckets = session.lattice().n_nodes();
        // If the catalog already holds this dataset but memory doesn't
        // (fresh process, or evicted), rehydrate it *first* so the insert
        // below dedups onto the session carrying the durable release
        // history — a blank just-built session must never shadow it.
        if self.sessions.get(&id).is_none() {
            self.rehydrate(&id)?;
        }
        let (stored, created) = self.sessions.insert(
            StoredSession {
                id: id.clone(),
                session: Arc::new(session),
                qi,
                sensitive,
                weight,
                touch: AtomicU64::new(0),
            },
            false,
        )?;
        if created {
            if let Some(store) = &self.store {
                // Persist before acknowledging: when this response reaches
                // the client, the handle survives any crash. The store is
                // first-writer-wins per fingerprint, so re-registering
                // after a restart (memory empty, disk populated) is a
                // durable no-op.
                let payload =
                    persist::encode_session(&stored.session, &stored.qi, &stored.sensitive);
                if let Err(e) = store.register(stored.session.fingerprint(), &payload) {
                    // Keep memory and disk consistent: an unpersisted
                    // handle must not be served as if it were durable.
                    self.sessions.remove(&id);
                    return Err(ServeError::Internal(format!(
                        "persisting registration of {id}: {e}"
                    )));
                }
            }
        }
        Ok(Json::object(vec![
            ("op", "register".into()),
            ("id", id.into()),
            ("created", created.into()),
            ("rows", rows.into()),
            ("lattice_nodes", buckets.into()),
            ("weight", stored.weight.into()),
            (
                "rollup",
                stored
                    .session
                    .rollup_stats()
                    .as_ref()
                    .map(rollup_json)
                    .unwrap_or(Json::Null),
            ),
        ]))
    }

    /// Resolves a handle: the in-memory map first, then — with a durable
    /// catalog attached — rehydration from disk, so an evicted or
    /// restart-forgotten handle answers again instead of 404ing. Only a
    /// handle on neither tier is unknown.
    fn stored(&self, id: &str) -> Result<Arc<StoredSession>, ServeError> {
        if let Some(stored) = self.sessions.get(id) {
            return Ok(stored);
        }
        if let Some(stored) = self.rehydrate(id)? {
            return Ok(stored);
        }
        Err(ServeError::UnknownTable(id.to_owned()))
    }

    /// Rebuilds a session from its catalog record: decode the payload,
    /// reconstruct the [`DatasetSession`] with the options it was
    /// registered with, and replay its persisted release nodes — each
    /// recomputed deterministically, so the composition history is
    /// bit-identical to the pre-restart one. Returns `Ok(None)` when no
    /// store is attached or the catalog has no such fingerprint.
    fn rehydrate(&self, id: &str) -> Result<Option<Arc<StoredSession>>, ServeError> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let Some(fp) = parse_handle(id) else {
            return Ok(None);
        };
        let Some(record) = store.get(fp) else {
            return Ok(None);
        };
        let internal = |m: String| ServeError::Internal(format!("rehydrating {id}: {m}"));
        let payload = persist::decode_session(&record.payload).map_err(internal)?;
        let session = DatasetSession::with_options(
            payload.table,
            payload.lattice,
            SessionOptions {
                memo_capacity: payload.memo_capacity,
                engines: Some(Arc::clone(&self.engines)),
                scan_threads: payload.scan_threads,
            },
        )
        .map_err(|e| internal(e.to_string()))?;
        if session.fingerprint() != fp {
            return Err(internal(
                "payload fingerprints differently than its catalog key; refusing to serve".into(),
            ));
        }
        for rec in &record.releases {
            let (node, model) = persist::decode_release(rec).map_err(internal)?;
            session
                .release_with_model(&node, model)
                .map_err(|e| internal(e.to_string()))?;
        }
        let weight = session
            .rollup_stats()
            .map(|s| s.bottom_groups as u64)
            .unwrap_or(session.table().n_rows() as u64)
            .max(1);
        // A concurrent rehydration of the same handle dedups inside insert.
        let (stored, _) = self.sessions.insert(
            StoredSession {
                id: id.to_owned(),
                session: Arc::new(session),
                qi: payload.qi,
                sensitive: payload.sensitive,
                weight,
                touch: AtomicU64::new(0),
            },
            true,
        )?;
        Ok(Some(stored))
    }

    /// Handles `GET /tables/{id}`.
    pub fn table_info(&self, id: &str) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        Ok(Json::object(vec![
            ("id", stored.id.as_str().into()),
            ("rows", stored.session.table().n_rows().into()),
            (
                "qi",
                Json::Array(stored.qi.iter().map(|n| n.as_str().into()).collect()),
            ),
            ("sensitive", stored.sensitive.as_str().into()),
            ("lattice_nodes", stored.session.lattice().n_nodes().into()),
            ("releases", stored.session.releases().into()),
            ("weight", stored.weight.into()),
            (
                "rollup",
                stored
                    .session
                    .rollup_stats()
                    .as_ref()
                    .map(rollup_json)
                    .unwrap_or(Json::Null),
            ),
        ]))
    }

    /// Handles `DELETE /tables/{id}`. With a durable catalog attached this
    /// is the one *true* deletion: the handle leaves both memory and disk,
    /// so — unlike an LRU eviction — it stays gone across restarts.
    pub fn drop_table(&self, id: &str) -> Result<Json, ServeError> {
        let in_memory = self.sessions.remove(id);
        let on_disk = match (&self.store, parse_handle(id)) {
            (Some(store), Some(fp)) => store
                .delete(fp)
                .map_err(|e| ServeError::Internal(format!("deleting {id}: {e}")))?,
            _ => false,
        };
        if !in_memory && !on_disk {
            return Err(ServeError::UnknownTable(id.to_owned()));
        }
        Ok(Json::object(vec![
            ("op", "drop".into()),
            ("id", id.into()),
            ("deleted", true.into()),
        ]))
    }

    /// Runs one audit against a session and renders it in the one-shot
    /// `/audit` response shape.
    fn audit_on(&self, session: &DatasetSession, request: &Json) -> Result<Json, ServeError> {
        let k = optional_usize(request, "k")?.unwrap_or(3);
        let c = optional_f64(request, "c")?;
        let model = parse_model(request)?;
        self.count_model(model, ModelOp::Audit);
        if model != ModelId::Conjunction {
            // A non-default adversary answers through the plugin surface;
            // the default stays on the classic path below, byte-identical
            // to pre-model responses.
            let report = session
                .audit_model(model, c, k)
                .map_err(|e| bad(e.to_string()))?;
            self.audits.fetch_add(1, Ordering::Relaxed);
            return Ok(model_audit_json(&report));
        }
        let profile = profile_requested(request)?;
        let build_before = profile.then(|| self.engines.stats().totals().build_micros);
        let started = profile.then(std::time::Instant::now);
        let report = session.audit(c, k).map_err(|e| bad(e.to_string()))?;
        self.audits.fetch_add(1, Ordering::Relaxed);
        let mut out = audit_json(&report);
        if let (Some(started), Some(build_before)) = (started, build_before) {
            let build = self
                .engines
                .stats()
                .totals()
                .build_micros
                .saturating_sub(build_before);
            push_field(
                &mut out,
                "profile",
                Json::object(vec![
                    (
                        "compute_micros",
                        (started.elapsed().as_micros() as u64).into(),
                    ),
                    (
                        "detail",
                        Json::object(vec![("minimize1_build_micros", build.into())]),
                    ),
                ]),
            );
        }
        Ok(out)
    }

    /// Runs one search against a session and renders it in the one-shot
    /// `/search` response shape.
    fn search_on(
        &self,
        session: &DatasetSession,
        qi_names: &[String],
        request: &Json,
        absorb: bool,
    ) -> Result<Json, ServeError> {
        let k = optional_usize(request, "k")?.unwrap_or(3);
        let c = optional_f64(request, "c")?.ok_or_else(|| bad("search needs \"c\""))?;
        if qi_names.is_empty() {
            return Err(bad("search needs a non-empty \"qi\" list"));
        }
        let config = search_config(request)?;
        self.count_model(config.model, ModelOp::Search);
        // The conjunction default keeps the classic criterion (and its
        // response bytes); any other model searches through the plugin
        // criterion — same monotone pruning, the model's bound.
        let criterion: Box<dyn PrivacyCriterion> = if config.model == ModelId::Conjunction {
            Box::new(
                CkSafetyCriterion::with_engine(c, session.engine(k))
                    .map_err(|e| bad(e.to_string()))?,
            )
        } else {
            Box::new(
                ModelSafetyCriterion::new(c, config.model.resolve(session.engine(k)))
                    .map_err(|e| bad(e.to_string()))?,
            )
        };
        let profile = profile_requested(request)?;
        // The "before" snapshots must not force the evaluator build: for a
        // one-shot search the single table scan happens lazily inside
        // `search`, and it belongs inside the timed compute section.
        let build_before = profile.then(|| self.engines.stats().totals().build_micros);
        let rollup_before = profile.then(|| session.rollup_stats_peek()).flatten();
        let started = profile.then(std::time::Instant::now);
        let SearchReport { outcome, rollup } = session
            .search(&criterion, &config)
            .map_err(|e| bad(format!("search: {e}")))?;
        if absorb {
            if let Some(stats) = &rollup {
                self.rollup.absorb(stats);
            }
        }
        self.searches.fetch_add(1, Ordering::Relaxed);
        let minimal: Vec<Json> = outcome
            .minimal_nodes
            .iter()
            .map(|node| Json::Array(node.0.iter().map(|&l| l.into()).collect()))
            .collect();
        let mut out = Json::object(vec![
            ("op", "search".into()),
            ("criterion", criterion.name().into()),
            (
                "qi",
                Json::Array(qi_names.iter().map(|n| n.as_str().into()).collect()),
            ),
            ("nodes", session.lattice().n_nodes().into()),
            ("evaluated", outcome.evaluated.into()),
            ("satisfied", outcome.satisfied.into()),
            ("safe", (!outcome.minimal_nodes.is_empty()).into()),
            ("minimal", Json::Array(minimal)),
            (
                "rollup",
                rollup.as_ref().map(rollup_json).unwrap_or(Json::Null),
            ),
        ]);
        if config.model != ModelId::Conjunction {
            push_field(&mut out, "model", config.model.name().into());
        }
        if let (Some(started), Some(build_before)) = (started, build_before) {
            let build = self
                .engines
                .stats()
                .totals()
                .build_micros
                .saturating_sub(build_before);
            let delta = |f: fn(&RollupStats) -> u64| -> u64 {
                rollup
                    .as_ref()
                    .map_or(0, f)
                    .saturating_sub(rollup_before.as_ref().map_or(0, f))
            };
            push_field(
                &mut out,
                "profile",
                Json::object(vec![
                    (
                        "compute_micros",
                        (started.elapsed().as_micros() as u64).into(),
                    ),
                    (
                        "detail",
                        Json::object(vec![
                            ("scan_micros", delta(|s| s.scan_micros).into()),
                            ("derive_micros", delta(|s| s.derive_micros).into()),
                            ("minimize1_build_micros", build.into()),
                        ]),
                    ),
                ]),
            );
        }
        Ok(out)
    }

    /// Handles `POST /audit`: **register → run → drop** over a transient
    /// session — bucketize by the exact quasi-identifiers and report
    /// maximum disclosure (and the (c,k)-safety verdict when `c` is given),
    /// exactly like `wcbk audit`.
    pub fn audit(&self, request: &Json) -> Result<Json, ServeError> {
        let (session, _, _) = self.build_session(request)?;
        self.audit_on(&session, request)
    }

    /// Handles `POST /search`: register → run → drop over a transient
    /// session; minimal (c,k)-safe generalizations over the request's
    /// hierarchies, honoring `threads` / `schedule` / `memo_cap`, exactly
    /// like `wcbk search` — through the **shared** engine for that `k`, so
    /// repeated searches reuse each other's MINIMIZE1 tables.
    pub fn search(&self, request: &Json) -> Result<Json, ServeError> {
        let (session, qi_names, _) = self.build_session(request)?;
        self.search_on(&session, &qi_names, request, true)
    }

    /// Handles `POST /tables/{id}/audit`: the registered evaluator answers
    /// without re-parsing or re-scanning anything.
    pub fn session_audit(&self, id: &str, request: &Json) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        let mut out = self.audit_on(&stored.session, request)?;
        annotate_id(&mut out, id);
        Ok(out)
    }

    /// Handles `POST /tables/{id}/search`. `memo_cap` is ignored here: the
    /// session's memo budget was fixed at registration (results are
    /// identical at any cap, so this cannot change answers).
    pub fn session_search(&self, id: &str, request: &Json) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        let mut out = self.search_on(&stored.session, &stored.qi, request, false)?;
        annotate_id(&mut out, id);
        Ok(out)
    }

    /// Handles `POST /tables/{id}/release`: record `"node"` (one level per
    /// lattice dimension) into the sequential-release history. With a
    /// durable catalog attached the node is appended to the store **before**
    /// the in-memory release — an acknowledged release survives any crash
    /// (replay recomputes its histograms bit-identically on rehydration).
    pub fn session_release(&self, id: &str, request: &Json) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        let node = request
            .get("node")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("release needs a \"node\" array of levels"))?
            .iter()
            .map(|l| {
                l.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| bad("\"node\" levels must be non-negative integers"))
            })
            .collect::<Result<Vec<usize>, ServeError>>()?;
        let node = GenNode(node);
        let model = parse_model(request)?;
        if let Some(store) = &self.store {
            // Validate first so only releases the session would accept hit
            // the durable history, then persist before computing: if we
            // crash between the append and the response, replay produces a
            // release the client never saw acknowledged — the standard WAL
            // contract (acknowledged ⇒ durable; durable ⇏ acknowledged).
            stored
                .session
                .lattice()
                .validate(&node)
                .map_err(|e| bad(e.to_string()))?;
            let record = persist::encode_release(&node, model);
            match store.append_release(stored.session.fingerprint(), &record) {
                Ok(_) => {}
                // The handle raced a DELETE: the catalog entry is gone, so
                // this release must not outlive it.
                Err(StoreError::UnknownDataset(_)) => {
                    self.sessions.remove(id);
                    return Err(ServeError::UnknownTable(id.to_owned()));
                }
                Err(e) => {
                    return Err(ServeError::Internal(format!(
                        "persisting release on {id}: {e}"
                    )))
                }
            }
        }
        let report = stored
            .session
            .release_with_model(&node, model)
            .map_err(|e| bad(e.to_string()))?;
        let mut out = Json::object(vec![
            ("op", "release".into()),
            ("id", id.into()),
            ("index", report.index.into()),
            (
                "node",
                Json::Array(report.node.0.iter().map(|&l| l.into()).collect()),
            ),
            ("buckets", report.buckets.into()),
            ("total_buckets", report.total_buckets.into()),
        ]);
        if model != ModelId::Conjunction {
            push_field(&mut out, "model", model.name().into());
        }
        Ok(out)
    }

    /// Handles `POST /tables/{id}/composition`: worst-case disclosure over
    /// every recorded release, composed under the request's `"model"` —
    /// union of released buckets by default, the common refinement for the
    /// linkage-aware sequential adversary. Both ride the session's
    /// persistent incremental state, so each audit costs only the releases
    /// recorded since the last one.
    pub fn session_composition(&self, id: &str, request: &Json) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        let k = optional_usize(request, "k")?.unwrap_or(3);
        let c = optional_f64(request, "c")?;
        let model = parse_model(request)?;
        self.count_model(model, ModelOp::Composition);
        if model != ModelId::Conjunction {
            let report = stored
                .session
                .audit_composition_model(model, c, k)
                .map_err(|e| bad(e.to_string()))?;
            return Ok(Json::object(vec![
                ("op", "composition".into()),
                ("id", id.into()),
                ("model", model.name().into()),
                ("releases", report.releases.into()),
                ("buckets", report.buckets.into()),
                ("k", report.k.into()),
                ("max_disclosure", report.value.into()),
                ("c", report.c.map(Json::from).unwrap_or(Json::Null)),
                ("safe", report.safe.map(Json::from).unwrap_or(Json::Null)),
            ]));
        }
        let report = stored
            .session
            .audit_composition(c, k)
            .map_err(|e| bad(e.to_string()))?;
        Ok(Json::object(vec![
            ("op", "composition".into()),
            ("id", id.into()),
            ("releases", report.releases.into()),
            ("buckets", report.buckets.into()),
            ("k", report.k.into()),
            ("max_disclosure", report.value.into()),
            ("c", report.c.map(Json::from).unwrap_or(Json::Null)),
            ("safe", report.safe.map(Json::from).unwrap_or(Json::Null)),
        ]))
    }

    /// Handles `GET /tables/{id}/history`: the session's release history in
    /// release order — the audit trail `audit_composition` runs over. Served
    /// from the (possibly rehydrated) session, so the answer is identical
    /// before and after a restart.
    pub fn table_history(&self, id: &str) -> Result<Json, ServeError> {
        let stored = self.stored(id)?;
        let history = stored.session.release_history_models();
        let entries: Vec<Json> = history
            .iter()
            .enumerate()
            .map(|(index, (node, buckets, model))| {
                let mut entry = Json::object(vec![
                    ("index", index.into()),
                    (
                        "node",
                        Json::Array(node.0.iter().map(|&l| l.into()).collect()),
                    ),
                    ("buckets", (*buckets).into()),
                ]);
                // Conjunction entries keep the pre-model shape, so history
                // responses stay byte-identical for classic clients.
                if *model != ModelId::Conjunction {
                    push_field(&mut entry, "model", model.name().into());
                }
                entry
            })
            .collect();
        Ok(Json::object(vec![
            ("op", "history".into()),
            ("id", id.into()),
            ("releases", entries.len().into()),
            ("history", Json::Array(entries)),
        ]))
    }

    /// Validates `POST /tables/{id}/batch`: many (c,k)/config jobs against
    /// one registered evaluator. Returns the resolved session and job list.
    pub fn session_batch_jobs(
        &self,
        id: &str,
        request: &Json,
    ) -> Result<(Arc<DatasetSession>, Vec<Json>), ServeError> {
        let stored = self.stored(id)?;
        let jobs = request
            .get("jobs")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("table batch needs a \"jobs\" array"))?;
        if jobs.is_empty() {
            return Err(bad("table batch needs at least one job"));
        }
        for (i, job) in jobs.iter().enumerate() {
            if job.as_object().is_none() {
                return Err(bad(format!("jobs[{i}] is not an object")));
            }
            match job.get("op").map(|op| op.as_str()) {
                None => {}
                Some(Some("audit" | "search")) => {}
                Some(other) => {
                    return Err(bad(format!(
                        "jobs[{i}].op must be \"audit\" or \"search\", got {other:?}"
                    )))
                }
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::clone(&stored.session), jobs.to_vec()))
    }

    /// Runs one job of a `/tables/{id}/batch` — never fails; job-level
    /// errors are embedded as `{"error": …}`.
    pub fn run_session_job(&self, id: &str, session: &DatasetSession, job: &Json) -> Json {
        let qi: Vec<String> = (0..session.lattice().n_dims())
            .map(|d| session.lattice().hierarchy(d).attribute().to_owned())
            .collect();
        let result = match job.get("op").and_then(Json::as_str).unwrap_or("audit") {
            "search" => self.search_on(session, &qi, job, false),
            _ => self.audit_on(session, job),
        };
        self.batch_tables.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(mut v) => {
                annotate_id(&mut v, id);
                v
            }
            Err(e) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                Json::object(vec![("error", e.to_string().into())])
            }
        }
    }

    /// Validates a `POST /batch` request, returning the job list (each an
    /// `audit`/`search` object as taken by [`audit`](Self::audit) and
    /// [`search`](Self::search), selected by its `"op"` field).
    pub fn batch_jobs(&self, request: &Json) -> Result<Vec<Json>, ServeError> {
        let tables = request
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("batch needs a \"tables\" array"))?;
        if tables.is_empty() {
            return Err(bad("batch needs at least one table"));
        }
        for (i, job) in tables.iter().enumerate() {
            if job.as_object().is_none() {
                return Err(bad(format!("tables[{i}] is not an object")));
            }
            match job.get("op").map(|op| op.as_str()) {
                None => {}
                Some(Some("audit" | "search")) => {}
                Some(other) => {
                    return Err(bad(format!(
                        "tables[{i}].op must be \"audit\" or \"search\", got {other:?}"
                    )))
                }
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        Ok(tables.to_vec())
    }

    /// Runs one batch job to a result object — never fails; job-level
    /// errors are embedded as `{"error": …}` so one bad table cannot sink
    /// its batch.
    pub fn run_job(&self, job: &Json) -> Json {
        let result = match job.get("op").and_then(Json::as_str).unwrap_or("audit") {
            "search" => self.search(job),
            _ => self.audit(job),
        };
        self.batch_tables.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(v) => v,
            Err(e) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                Json::object(vec![("error", e.to_string().into())])
            }
        }
    }

    /// Counts one request rejected before reaching a handler.
    pub fn count_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The `/stats` body: engine cache totals (per `k` and summed), the
    /// accumulated roll-up counters, per-session snapshots, and
    /// service-level request counts. The caller (the server) appends its
    /// own section.
    pub fn stats(&self) -> Vec<(&'static str, Json)> {
        let registry = self.engines.stats();
        let per_k: Vec<Json> = registry
            .per_k
            .iter()
            .map(|(k, s)| {
                Json::object(vec![
                    ("k", (*k).into()),
                    ("hits", s.hits.into()),
                    ("misses", s.misses.into()),
                    ("entries", s.entries.into()),
                    ("groups", s.groups.into()),
                    ("peak_groups", s.peak_groups.into()),
                    ("evictions", s.evictions.into()),
                    ("build_micros", s.build_micros.into()),
                    ("hit_rate", s.hit_rate().into()),
                ])
            })
            .collect();
        let totals = registry.totals();
        let sessions = self.sessions.snapshot();
        let per_session: Vec<Json> = sessions
            .iter()
            .map(|s| {
                Json::object(vec![
                    ("id", s.id.as_str().into()),
                    ("weight", s.weight.into()),
                    ("releases", s.session.releases().into()),
                    (
                        "rollup",
                        s.session
                            .rollup_stats()
                            .as_ref()
                            .map(rollup_json)
                            .unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        let session_groups: u64 = sessions.iter().map(|s| s.weight).sum();
        let mut out = vec![
            (
                "engine_cache",
                Json::object(vec![
                    ("engines", registry.engines.into()),
                    ("hits", totals.hits.into()),
                    ("misses", totals.misses.into()),
                    ("entries", totals.entries.into()),
                    ("groups", totals.groups.into()),
                    ("peak_groups", registry.peak_groups.into()),
                    ("cache_evictions", totals.evictions.into()),
                    ("engine_evictions", registry.evictions.into()),
                    ("build_micros", totals.build_micros.into()),
                    ("hit_rate", totals.hit_rate().into()),
                    ("per_k", Json::Array(per_k)),
                ]),
            ),
            (
                "sessions",
                Json::object(vec![
                    ("count", sessions.len().into()),
                    ("groups", session_groups.into()),
                    (
                        "peak_groups",
                        self.sessions.peak_groups.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "evictions",
                        self.sessions.evictions.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "registered",
                        self.sessions.registered.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "rehydrated",
                        self.sessions.rehydrated.load(Ordering::Relaxed).into(),
                    ),
                    ("per_session", Json::Array(per_session)),
                ]),
            ),
            (
                "rollup",
                Json::object(vec![
                    (
                        "searches",
                        self.rollup.searches.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "table_scans",
                        self.rollup.table_scans.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "derived",
                        self.rollup.derived.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "ancestor_derived",
                        self.rollup.ancestor_derived.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "memo_hits",
                        self.rollup.memo_hits.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "evictions",
                        self.rollup.evictions.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "peak_memo_groups",
                        self.rollup.peak_memo_groups.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "scan_micros",
                        self.rollup.scan_micros.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "derive_micros",
                        self.rollup.derive_micros.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "service",
                Json::object(vec![
                    ("audits", self.audits.load(Ordering::Relaxed).into()),
                    ("searches", self.searches.load(Ordering::Relaxed).into()),
                    ("batches", self.batches.load(Ordering::Relaxed).into()),
                    (
                        "batch_tables",
                        self.batch_tables.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "bad_requests",
                        self.bad_requests.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "model_requests",
                        Json::Object(
                            wcbk_anonymize::MODEL_IDS
                                .iter()
                                .map(|m| {
                                    let ops = &self.model_ops[m.index()];
                                    (
                                        m.name().to_owned(),
                                        Json::Object(
                                            MODEL_OPS
                                                .iter()
                                                .zip(ops)
                                                .map(|(op, n)| {
                                                    (
                                                        (*op).to_owned(),
                                                        n.load(Ordering::Relaxed).into(),
                                                    )
                                                })
                                                .collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ];
        if let Some(store) = &self.store {
            let s = store.stats();
            out.push((
                "store",
                Json::object(vec![
                    ("datasets", s.datasets.into()),
                    ("releases", s.releases.into()),
                    ("wal_records", s.wal_records.into()),
                    ("wal_bytes", s.wal_bytes.into()),
                    ("checkpoints", s.checkpoints.into()),
                    ("checkpoint_micros", s.checkpoint_micros.into()),
                    ("replayed_records", s.replayed_records.into()),
                    ("truncated_bytes", s.truncated_bytes.into()),
                    ("wal_appends", s.wal_appends.into()),
                    ("wal_append_micros", s.wal_append_micros.into()),
                    ("wal_fsync_micros", s.wal_fsync_micros.into()),
                ]),
            ));
        }
        out
    }

    /// Raw cumulative totals for the `/metrics` mirror — see
    /// `crate::metrics::ServeMetrics::sync`. Roll-up totals sum the absorbed
    /// one-shot counters with every **live** session's evaluator stats
    /// (peeked, never forcing a build at scrape time); evicted sessions'
    /// contributions survive because the mirror counters only move up.
    pub fn metric_totals(&self) -> MetricTotals {
        let registry = self.engines.stats();
        let totals = registry.totals();
        let sessions = self.sessions.snapshot();
        let mut scan_micros = self.rollup.scan_micros.load(Ordering::Relaxed);
        let mut derive_micros = self.rollup.derive_micros.load(Ordering::Relaxed);
        let mut derived = self.rollup.derived.load(Ordering::Relaxed);
        let mut table_scans = self.rollup.table_scans.load(Ordering::Relaxed);
        let session_groups: u64 = sessions.iter().map(|s| s.weight).sum();
        for s in &sessions {
            if let Some(stats) = s.session.rollup_stats_peek() {
                scan_micros += stats.scan_micros;
                derive_micros += stats.derive_micros;
                derived += stats.derived;
                table_scans += stats.table_scans;
            }
        }
        MetricTotals {
            scan_micros,
            derive_micros,
            derived,
            table_scans,
            minimize1_build_micros: totals.build_micros,
            minimize1_groups: totals.groups,
            minimize1_peak_groups: totals.peak_groups,
            engine_count: registry.engines as u64,
            engine_groups: registry.groups,
            engine_peak_groups: registry.peak_groups,
            session_count: sessions.len() as u64,
            session_groups,
            session_peak_groups: self.sessions.peak_groups.load(Ordering::Relaxed),
            model_requests: std::array::from_fn(|m| {
                std::array::from_fn(|op| self.model_ops[m][op].load(Ordering::Relaxed))
            }),
            store: self.store.as_ref().map(|s| s.stats()),
        }
    }
}

/// Cumulative engine/store-layer totals mirrored into `/metrics` at scrape
/// time. Counters here are raw monotone sources (modulo LRU eviction, which
/// the mirror's `record_total` absorbs); gauges are instantaneous.
pub struct MetricTotals {
    /// Σ roll-up bottom-scan wall time (absorbed one-shots + live sessions).
    pub scan_micros: u64,
    /// Σ roll-up node-derivation wall time.
    pub derive_micros: u64,
    /// Σ node tables derived by roll-up.
    pub derived: u64,
    /// Σ full bottom scans performed.
    pub table_scans: u64,
    /// Σ MINIMIZE1 build wall time across registered engines.
    pub minimize1_build_micros: u64,
    /// Groups retained by MINIMIZE1 caches right now.
    pub minimize1_groups: u64,
    /// Σ per-engine cache high-water marks.
    pub minimize1_peak_groups: u64,
    /// Engines registered right now.
    pub engine_count: u64,
    /// Σ retained groups across engines (the registry budget's unit).
    pub engine_groups: u64,
    /// Registry-level retained-groups high-water mark.
    pub engine_peak_groups: u64,
    /// Sessions resident right now.
    pub session_count: u64,
    /// Σ resident session weight (groups).
    pub session_groups: u64,
    /// Session-store retained-weight high-water mark.
    pub session_peak_groups: u64,
    /// Σ requests per adversary model, indexed
    /// `[ModelId::index()][op]` with ops ordered as [`MODEL_OPS`].
    pub model_requests: [[u64; 3]; 4],
    /// Durable-store stats when `--data-dir` is attached.
    pub store: Option<wcbk_store::StoreStats>,
}

/// Renders an [`AuditReport`] in the `/audit` response shape (unchanged
/// across the handle redesign, pinned by the integration tests).
fn audit_json(report: &AuditReport) -> Json {
    Json::object(vec![
        ("op", "audit".into()),
        ("buckets", report.buckets.into()),
        ("tuples", report.tuples.into()),
        ("domain", report.domain.into()),
        ("k", report.k.into()),
        ("max_disclosure", report.disclosure.value.into()),
        (
            "witness",
            Json::object(vec![
                (
                    "predicts",
                    report.disclosure.witness.consequent.to_string().into(),
                ),
                (
                    "knowing",
                    report.disclosure.witness.knowledge().to_string().into(),
                ),
            ]),
        ),
        ("c", report.c.map(Json::from).unwrap_or(Json::Null)),
        ("safe", report.safe.map(Json::from).unwrap_or(Json::Null)),
    ])
}

/// Renders a [`ModelAuditReport`] in the `/audit` response shape plus a
/// `"model"` field; the witness clauses are the model's reconstruction
/// (deterministic strings, so responses replay byte-for-byte).
fn model_audit_json(report: &ModelAuditReport) -> Json {
    Json::object(vec![
        ("op", "audit".into()),
        ("model", report.model.name().into()),
        ("buckets", report.buckets.into()),
        ("tuples", report.tuples.into()),
        ("domain", report.domain.into()),
        ("k", report.k.into()),
        ("max_disclosure", report.value.into()),
        (
            "witness",
            Json::object(vec![
                ("predicts", report.witness.predicts.as_str().into()),
                ("knowing", report.witness.knowing.join("\n").into()),
            ]),
        ),
        ("c", report.c.map(Json::from).unwrap_or(Json::Null)),
        ("safe", report.safe.map(Json::from).unwrap_or(Json::Null)),
    ])
}

/// Appends the handle id to a session response object.
fn annotate_id(out: &mut Json, id: &str) {
    if let Json::Object(pairs) = out {
        pairs.push(("id".to_owned(), id.into()));
    }
}

/// Appends one field to a response object (no-op on non-objects).
fn push_field(out: &mut Json, key: &str, value: Json) {
    if let Json::Object(pairs) = out {
        pairs.push((key.to_owned(), value));
    }
}

/// Parses the optional `"profile"` flag (absent or `null` → off).
fn profile_requested(request: &Json) -> Result<bool, ServeError> {
    match request.get("profile") {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad("\"profile\" must be a boolean")),
    }
}

fn rollup_json(stats: &RollupStats) -> Json {
    Json::object(vec![
        ("table_scans", stats.table_scans.into()),
        ("derived", stats.derived.into()),
        ("ancestor_derived", stats.ancestor_derived.into()),
        ("memo_hits", stats.memo_hits.into()),
        ("evictions", stats.evictions.into()),
        ("memo_entries", stats.memo_entries.into()),
        ("memo_groups", stats.memo_groups.into()),
        ("bottom_groups", stats.bottom_groups.into()),
        // Deliberately no wall-time fields: response bodies stay
        // bit-identical across runs and restarts (pinned by the
        // persistence tests); timings live in /stats, /metrics, and the
        // opt-in "profile" object.
    ])
}

fn optional_usize(request: &Json, key: &str) -> Result<Option<usize>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn optional_f64(request: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("\"{key}\" must be a number"))),
    }
}

/// An optional list of strings (absent → empty).
fn string_list(request: &Json, key: &str) -> Result<Vec<String>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| bad(format!("\"{key}\" must be an array of strings")))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad(format!("\"{key}\" must be an array of strings")))
            })
            .collect(),
    }
}

/// Parses the optional `"model"` field: the adversary model the request is
/// judged under. Absent or `null` means the paper's conjunction language
/// (the pre-model behavior, byte-identical on the wire); an unknown name is
/// a 400 listing the registry.
fn parse_model(request: &Json) -> Result<ModelId, ServeError> {
    match request.get("model") {
        None | Some(Json::Null) => Ok(ModelId::Conjunction),
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad(format!("\"model\" must be one of {MODEL_NAMES:?}")))?
            .parse::<ModelId>()
            .map_err(bad),
    }
}

/// Parses `threads` / `schedule` / `memo_cap` (alias `memo-cap`) /
/// `scan_threads` into a [`SearchConfig`] with the same defaults and
/// spellings as the CLI. `threads` and `scan_threads` are capped at the
/// machine's core count — they are client-supplied numbers on a network
/// surface, and the scheduler's own clamp (lattice size) is *also*
/// client-controlled via `hierarchy`.
fn search_config(request: &Json) -> Result<SearchConfig, ServeError> {
    let threads = optional_usize(request, "threads")?
        .unwrap_or(1)
        .min(default_threads());
    let scan_threads = optional_usize(request, "scan_threads")?
        .unwrap_or(1)
        .min(default_threads());
    let schedule = match request.get("schedule") {
        None | Some(Json::Null) => Schedule::default(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("\"schedule\" must be a string"))?
            .parse::<Schedule>()
            .map_err(bad)?,
    };
    let memo_capacity = match optional_usize(request, "memo_cap")? {
        Some(n) => Some(n),
        None => optional_usize(request, "memo-cap")?,
    };
    Ok(SearchConfig {
        threads,
        schedule,
        memo_capacity,
        scan_threads,
        model: parse_model(request)?,
    })
}

/// Builds the generalization lattice for `qi` from the request's
/// `"hierarchy"` object (`{"Age": [5, 10], …}` — interval widths per
/// column; unlisted columns get suppression hierarchies), mirroring the
/// CLI's `--hierarchy COL:W1,W2,…` flags.
fn build_lattice(
    table: &Table,
    qi: &[String],
    request: &Json,
) -> Result<GeneralizationLattice, ServeError> {
    let specs: Vec<(String, Vec<u64>)> = match request.get("hierarchy") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => v
            .as_object()
            .ok_or_else(|| bad("\"hierarchy\" must be an object of column -> widths"))?
            .iter()
            .map(|(col, widths)| {
                let widths = widths
                    .as_array()
                    .ok_or_else(|| bad(format!("hierarchy {col:?}: widths must be an array")))?
                    .iter()
                    .map(|w| {
                        w.as_u64()
                            .ok_or_else(|| bad(format!("hierarchy {col:?}: bad width")))
                    })
                    .collect::<Result<Vec<u64>, ServeError>>()?;
                Ok((col.clone(), widths))
            })
            .collect::<Result<_, ServeError>>()?,
    };
    for (col, _) in &specs {
        if !qi.contains(col) {
            return Err(bad(format!("hierarchy column {col:?} is not a qi column")));
        }
    }
    let dims = qi
        .iter()
        .map(|name| {
            let col = table
                .schema()
                .index_of(name)
                .map_err(|e| bad(e.to_string()))?;
            let dict = table.column(col).dictionary();
            let hierarchy = match specs.iter().find(|(sc, _)| sc == name) {
                Some((_, widths)) => {
                    Hierarchy::intervals(name, dict, widths).map_err(|e| bad(e.to_string()))?
                }
                None => Hierarchy::suppression(name, dict),
            };
            Ok((col, hierarchy))
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    GeneralizationLattice::new(dims).map_err(|e| bad(e.to_string()))
}

#[cfg(test)]
fn resolve_columns(table: &Table, names: &[String]) -> Result<Vec<usize>, ServeError> {
    names
        .iter()
        .map(|n| table.schema().index_of(n).map_err(|e| bad(e.to_string())))
        .collect()
}

/// Buckets by the exact quasi-identifier codes (the `wcbk audit` grouping);
/// no quasi-identifiers means one bucket holding every tuple. Kept as the
/// tests' independent baseline for what a session's exact grouping must
/// equal.
#[cfg(test)]
fn bucketize_exact(
    table: &Table,
    qi_cols: &[usize],
) -> Result<wcbk_core::Bucketization, ServeError> {
    let b = if qi_cols.is_empty() {
        wcbk_core::Bucketization::from_grouping(table, |_| 0u8)
    } else {
        wcbk_core::Bucketization::from_grouping(table, |t| {
            qi_cols
                .iter()
                .map(|&col| table.column(col).code(t.index()))
                .collect::<Vec<u32>>()
        })
    };
    b.map_err(|e| bad(format!("bucketize: {e}")))
}

/// Builds the [`Schema`] for the request's column `names`: `sensitive`
/// names the sensitive column, `qi` columns are quasi-identifiers,
/// everything else insensitive — the same roles the CLI assigns.
fn schema_from_names(
    names: &[String],
    sensitive: &str,
    qi: &[String],
) -> Result<Schema, ServeError> {
    let attributes: Vec<Attribute> = names
        .iter()
        .map(|n| {
            let kind = if n == sensitive {
                AttributeKind::Sensitive
            } else if qi.contains(n) {
                AttributeKind::QuasiIdentifier
            } else {
                AttributeKind::Insensitive
            };
            Attribute::new(n.clone(), kind)
        })
        .collect();
    Schema::new(attributes).map_err(|e| bad(e.to_string()))
}

/// Builds a [`Table`] from the request: either `"csv"` (text, first record
/// the header) or `"columns"` + `"rows"` (inline). Column roles follow the
/// CLI: `"sensitive"` names the sensitive column, `"qi"` columns are
/// quasi-identifiers, everything else insensitive.
///
/// The CSV body is **streamed** into a [`ChunkedTableBuilder`]: each record
/// is dictionary-encoded the moment it is parsed, so registration never
/// stages the decoded rows (`Vec<Vec<String>>`) in memory — at a million
/// rows that staging used to dwarf the table itself. The built table is
/// bit-identical to the old buffering path (the chunked builder is pinned
/// `==` to [`TableBuilder`](wcbk_table::TableBuilder) in `wcbk-table`).
pub fn table_from_request(request: &Json) -> Result<Table, ServeError> {
    if request.as_object().is_none() {
        return Err(bad("request body must be a JSON object"));
    }
    let sensitive = request
        .get("sensitive")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"sensitive\" column name"))?;
    let qi = string_list(request, "qi")?;

    let table = match request.get("csv") {
        Some(csv) => {
            let text = csv
                .as_str()
                .ok_or_else(|| bad("\"csv\" must be a string"))?;
            let mut reader = wcbk_table::csv::CsvReader::new(BufReader::new(text.as_bytes()));
            let header = reader
                .next_record()
                .map_err(|e| bad(format!("csv: {e}")))?
                .ok_or_else(|| bad("csv is empty"))?;
            let names: Vec<String> = header.iter().map(|s| s.trim().to_owned()).collect();
            let schema = schema_from_names(&names, sensitive, &qi)?;
            let mut builder = ChunkedTableBuilder::new(schema);
            while let Some(record) = reader.next_record().map_err(|e| bad(format!("csv: {e}")))? {
                let trimmed: Vec<&str> = record.iter().map(|s| s.trim()).collect();
                builder.push_row(&trimmed).map_err(|e| bad(e.to_string()))?;
            }
            builder.build()
        }
        None => {
            let names = string_list(request, "columns")?;
            if names.is_empty() {
                return Err(bad("need \"csv\" text or \"columns\" + \"rows\""));
            }
            let schema = schema_from_names(&names, sensitive, &qi)?;
            let mut builder = ChunkedTableBuilder::new(schema);
            let rows = request
                .get("rows")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("\"rows\" must be an array of arrays"))?;
            let mut trimmed: Vec<&str> = Vec::with_capacity(names.len());
            for row in rows {
                let cells = row
                    .as_array()
                    .ok_or_else(|| bad("\"rows\" must be an array of arrays"))?;
                trimmed.clear();
                for cell in cells {
                    trimmed.push(
                        cell.as_str()
                            .ok_or_else(|| bad("row cells must be strings"))?
                            .trim(),
                    );
                }
                builder.push_row(&trimmed).map_err(|e| bad(e.to_string()))?;
            }
            builder.build()
        }
    };
    if table.n_rows() == 0 {
        return Err(bad("table has no rows"));
    }
    Ok(table)
}

/// Where a [`CsvUpload`] stands as body bytes stream in.
enum UploadState {
    /// No complete record yet — the header row names the columns.
    AwaitingHeader,
    /// Header consumed; data records dictionary-encode as they complete.
    Building { builder: ChunkedTableBuilder },
    /// Something was invalid (parameters, CSV syntax, a short row); the
    /// error is held until [`AuditService::register_upload`] reports it, so
    /// the connection can keep draining the body cheaply.
    Failed(ServeError),
}

/// An incremental wire-CSV registration: `POST /tables` with a `text/csv`
/// body (parameters in the query string: `sensitive=…`, `qi=A,B`,
/// repeatable `hierarchy=COL:W1,W2`, `memo_cap=…`, `scan_threads=…`).
///
/// The reactor [`push`](Self::push)es raw body bytes as they arrive off
/// the socket; records split and dictionary-encode immediately
/// ([`RecordSplitter`] + [`ChunkedTableBuilder`]), so the upload never
/// materializes the request body — the peak transient is one record. The
/// resulting table is bit-identical to the buffered JSON `"csv"` path
/// (same trimming, same builder), so both roads produce the same
/// content-fingerprint handle.
pub struct CsvUpload {
    /// Query-string parameters lifted into the same JSON shape the body
    /// path uses, so the session-building tail is literally shared code.
    params: Json,
    splitter: RecordSplitter,
    state: UploadState,
}

impl CsvUpload {
    /// Starts an upload for a request target like
    /// `/tables?sensitive=Disease&qi=Age,Sex`. Never fails: bad parameters
    /// park the upload in `Failed` and surface as the 400 when finalized.
    pub fn new(target: &str) -> CsvUpload {
        let query = target.split_once('?').map_or("", |(_, q)| q);
        let (params, state) = match upload_params(query) {
            Ok(params) => (params, UploadState::AwaitingHeader),
            Err(e) => (Json::Null, UploadState::Failed(e)),
        };
        CsvUpload {
            params,
            splitter: RecordSplitter::new(),
            state,
        }
    }

    /// Feeds decoded body bytes, consuming every record they complete.
    pub fn push(&mut self, bytes: &[u8]) {
        if matches!(self.state, UploadState::Failed(_)) {
            return;
        }
        self.splitter.push(bytes);
        loop {
            match self.splitter.next_record() {
                Ok(Some(record)) => self.consume(record),
                Ok(None) => return,
                Err(e) => {
                    self.state = UploadState::Failed(bad(format!("csv: {e}")));
                    return;
                }
            }
            if matches!(self.state, UploadState::Failed(_)) {
                return;
            }
        }
    }

    /// Marks end-of-body, consuming a trailing unterminated record.
    pub fn finish(&mut self) {
        if matches!(self.state, UploadState::Failed(_)) {
            return;
        }
        match self.splitter.finish() {
            Ok(Some(record)) => self.consume(record),
            Ok(None) => {}
            Err(e) => self.state = UploadState::Failed(bad(format!("csv: {e}"))),
        }
    }

    /// Applies one parsed record: the first names the columns, the rest
    /// are rows — with the exact trimming the buffered path applies.
    fn consume(&mut self, record: Vec<String>) {
        match &mut self.state {
            UploadState::AwaitingHeader => {
                let names: Vec<String> = record.iter().map(|s| s.trim().to_owned()).collect();
                let built = (|| {
                    let sensitive = self
                        .params
                        .get("sensitive")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing \"sensitive\" column name"))?;
                    let qi = string_list(&self.params, "qi")?;
                    let schema = schema_from_names(&names, sensitive, &qi)?;
                    Ok(ChunkedTableBuilder::new(schema))
                })();
                self.state = match built {
                    Ok(builder) => UploadState::Building { builder },
                    Err(e) => UploadState::Failed(e),
                };
            }
            UploadState::Building { builder } => {
                let trimmed: Vec<&str> = record.iter().map(|s| s.trim()).collect();
                if let Err(e) = builder.push_row(&trimmed) {
                    self.state = UploadState::Failed(bad(e.to_string()));
                }
            }
            UploadState::Failed(_) => {}
        }
    }
}

/// Parses an upload query string into the JSON parameter shape
/// `POST /tables` bodies use (`sensitive`, `qi`, `hierarchy`, `memo_cap`,
/// `scan_threads`), with `%XX`/`+` decoding. Unknown keys are rejected —
/// a typo silently ignored here would mis-register a dataset.
fn upload_params(query: &str) -> Result<Json, ServeError> {
    let mut sensitive: Option<String> = None;
    let mut qi: Vec<Json> = Vec::new();
    let mut hierarchy: Vec<(String, Json)> = Vec::new();
    let mut memo_cap: Option<u64> = None;
    let mut scan_threads: Option<u64> = None;
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let key = percent_decode(key);
        let value = percent_decode(value);
        match key.as_str() {
            "sensitive" => sensitive = Some(value),
            "qi" => qi.extend(value.split(',').filter(|s| !s.is_empty()).map(Json::from)),
            "hierarchy" => {
                let (col, widths) = value
                    .split_once(':')
                    .ok_or_else(|| bad(format!("hierarchy {value:?}: expected COL:W1,W2,…")))?;
                let widths = widths
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<u64>()
                            .map(Json::from)
                            .map_err(|_| bad(format!("hierarchy {col:?}: bad width")))
                    })
                    .collect::<Result<Vec<Json>, ServeError>>()?;
                hierarchy.push((col.to_owned(), Json::Array(widths)));
            }
            "memo_cap" | "memo-cap" => {
                memo_cap = Some(
                    value
                        .parse()
                        .map_err(|_| bad("\"memo_cap\" must be a non-negative integer"))?,
                );
            }
            "scan_threads" => {
                scan_threads = Some(
                    value
                        .parse()
                        .map_err(|_| bad("\"scan_threads\" must be a non-negative integer"))?,
                );
            }
            other => return Err(bad(format!("unknown query parameter {other:?}"))),
        }
    }
    let mut params: Vec<(String, Json)> = Vec::new();
    if let Some(s) = sensitive {
        params.push(("sensitive".to_owned(), s.into()));
    }
    params.push(("qi".to_owned(), Json::Array(qi)));
    if !hierarchy.is_empty() {
        params.push(("hierarchy".to_owned(), Json::Object(hierarchy)));
    }
    if let Some(n) = memo_cap {
        params.push(("memo_cap".to_owned(), n.into()));
    }
    if let Some(n) = scan_threads {
        params.push(("scan_threads".to_owned(), n.into()));
    }
    Ok(Json::Object(params))
}

/// Decodes `%XX` escapes and `+`-for-space in a query component. Invalid
/// escapes pass through literally; non-UTF-8 decodes lossily (the value
/// will then simply fail to match a column name).
fn percent_decode(s: &str) -> String {
    let raw = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        match raw[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = raw.get(i + 1..i + 3);
                let decoded = hex.and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match decoded {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_core::DisclosureEngine;

    const HOSPITAL_CSV: &str =
        "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n";

    fn audit_request() -> String {
        Json::object(vec![
            ("csv", HOSPITAL_CSV.into()),
            ("sensitive", "Disease".into()),
            ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
            ("k", 1u64.into()),
            ("c", 0.9.into()),
        ])
        .to_string()
    }

    #[test]
    fn audit_matches_direct_engine_path() {
        let service = AuditService::new();
        let request = Json::parse(&audit_request()).unwrap();
        let out = service.audit(&request).unwrap();

        // The same computation through the library directly.
        let table = table_from_request(&request).unwrap();
        let qi_cols = resolve_columns(&table, &["Age".into(), "Sex".into()]).unwrap();
        let b = bucketize_exact(&table, &qi_cols).unwrap();
        let engine = DisclosureEngine::new(1);
        let direct = engine.max_disclosure(&b).unwrap();
        assert_eq!(
            out.get("max_disclosure")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            direct.value.to_bits()
        );
        assert_eq!(
            out.get("safe").unwrap().as_bool(),
            Some(wcbk_core::is_ck_safe(&b, 0.9, 1).unwrap())
        );
        assert_eq!(out.get("buckets").unwrap().as_u64(), Some(6));
        assert_eq!(out.get("tuples").unwrap().as_u64(), Some(6));
    }

    /// The streamed register path (CSV records encoded as parsed, via the
    /// chunked builder) produces a table `==` to pushing the same trimmed
    /// rows through the classic row builder — for both request shapes.
    #[test]
    fn streamed_register_is_bit_identical_to_row_builder() {
        let csv_request = Json::parse(
            &Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
            ])
            .to_string(),
        )
        .unwrap();
        let streamed = table_from_request(&csv_request).unwrap();

        let mut reference = wcbk_table::TableBuilder::new(streamed.schema().clone());
        let mut reader = wcbk_table::csv::CsvReader::new(BufReader::new(HOSPITAL_CSV.as_bytes()));
        reader.next_record().unwrap().unwrap(); // header
        while let Some(record) = reader.next_record().unwrap() {
            let trimmed: Vec<&str> = record.iter().map(|s| s.trim()).collect();
            reference.push_row(&trimmed).unwrap();
        }
        assert_eq!(streamed, reference.build());

        let inline_request = Json::parse(
            &Json::object(vec![
                (
                    "columns",
                    Json::Array(vec!["Age".into(), "Sex".into(), "Disease".into()]),
                ),
                (
                    "rows",
                    Json::Array(vec![
                        Json::Array(vec!["21 ".into(), "M".into(), "Flu".into()]),
                        Json::Array(vec![" 23".into(), "F".into(), "Flu".into()]),
                    ]),
                ),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into()])),
            ])
            .to_string(),
        )
        .unwrap();
        let inline = table_from_request(&inline_request).unwrap();
        let mut reference = wcbk_table::TableBuilder::new(inline.schema().clone());
        reference.push_row(&["21", "M", "Flu"]).unwrap();
        reference.push_row(&["23", "F", "Flu"]).unwrap();
        assert_eq!(inline, reference.build());
    }

    #[test]
    fn search_matches_library_search() {
        let service = AuditService::new();
        let request = Json::parse(
            &Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                ("k", 1u64.into()),
                ("c", 0.9.into()),
                ("threads", 2u64.into()),
                ("schedule", "steal".into()),
                ("memo_cap", 16u64.into()),
            ])
            .to_string(),
        )
        .unwrap();
        let out = service.search(&request).unwrap();

        let table = table_from_request(&request).unwrap();
        let lattice = build_lattice(&table, &["Age".into(), "Sex".into()], &request).unwrap();
        let criterion = CkSafetyCriterion::new(0.9, 1).unwrap();
        let config = SearchConfig {
            threads: 2,
            schedule: Schedule::WorkStealing,
            memo_capacity: Some(16),
            ..Default::default()
        };
        let direct =
            wcbk_anonymize::find_minimal_safe_with(&table, &lattice, &criterion, &config).unwrap();
        let minimal = out.get("minimal").unwrap().as_array().unwrap();
        assert_eq!(minimal.len(), direct.minimal_nodes.len());
        for (got, want) in minimal.iter().zip(&direct.minimal_nodes) {
            let got: Vec<usize> = got
                .as_array()
                .unwrap()
                .iter()
                .map(|l| l.as_u64().unwrap() as usize)
                .collect();
            assert_eq!(got, want.0);
        }
        assert_eq!(
            out.get("evaluated").unwrap().as_u64(),
            Some(direct.evaluated as u64)
        );
        assert_eq!(
            out.get("satisfied").unwrap().as_u64(),
            Some(direct.satisfied as u64)
        );
        // The roll-up section made it into the response and the totals.
        assert!(out.get("rollup").unwrap().get("table_scans").is_some());
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        assert_eq!(
            stats
                .get("rollup")
                .unwrap()
                .get("searches")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn shared_engine_hits_across_requests() {
        let service = AuditService::new();
        let request = Json::parse(&audit_request()).unwrap();
        service.audit(&request).unwrap();
        service.audit(&request).unwrap();
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        let cache = stats.get("engine_cache").unwrap();
        assert!(
            cache.get("hits").unwrap().as_u64().unwrap() > 0,
            "second audit must hit the shared engine cache: {stats}"
        );
        assert_eq!(cache.get("engines").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn inline_rows_equal_csv() {
        let service = AuditService::new();
        let by_csv = service
            .audit(&Json::parse(&audit_request()).unwrap())
            .unwrap();
        let rows: Vec<Json> = HOSPITAL_CSV
            .lines()
            .skip(1)
            .map(|l| Json::Array(l.split(',').map(Json::from).collect()))
            .collect();
        let by_rows = service
            .audit(&Json::object(vec![
                (
                    "columns",
                    Json::Array(vec!["Age".into(), "Sex".into(), "Disease".into()]),
                ),
                ("rows", Json::Array(rows)),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                ("k", 1u64.into()),
                ("c", 0.9.into()),
            ]))
            .unwrap();
        assert_eq!(by_csv, by_rows);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        let service = AuditService::new();
        let cases: Vec<Json> = vec![
            Json::Array(vec![]),
            Json::object(vec![("csv", HOSPITAL_CSV.into())]), // no sensitive
            Json::object(vec![("sensitive", "Disease".into())]), // no data
            Json::object(vec![
                ("csv", "A,B\n".into()), // header only
                ("sensitive", "A".into()),
            ]),
            Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Nope".into()),
            ]),
            Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("k", (-1.0).into()),
            ]),
        ];
        for request in cases {
            assert!(service.audit(&request).is_err(), "{request} should fail");
        }
        // Search-specific: missing c, empty qi, hierarchy on non-qi column.
        let base = vec![
            ("csv", Json::from(HOSPITAL_CSV)),
            ("sensitive", "Disease".into()),
        ];
        let mut no_c = base.clone();
        no_c.push(("qi", Json::Array(vec!["Age".into()])));
        assert!(service.search(&Json::object(no_c)).is_err());
        let mut no_qi = base.clone();
        no_qi.push(("c", 0.9.into()));
        assert!(service.search(&Json::object(no_qi)).is_err());
        let mut bad_hier = base.clone();
        bad_hier.push(("c", 0.9.into()));
        bad_hier.push(("qi", Json::Array(vec!["Sex".into()])));
        bad_hier.push((
            "hierarchy",
            Json::object(vec![("Age", Json::Array(vec![5u64.into()]))]),
        ));
        assert!(service.search(&Json::object(bad_hier)).is_err());
    }

    #[test]
    fn batch_jobs_validate_shape() {
        let service = AuditService::new();
        assert!(service.batch_jobs(&Json::object(vec![])).is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![("tables", Json::Array(vec![]))]))
            .is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![Json::Null])
            )]))
            .is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![Json::object(vec![("op", "explode".into())])])
            )]))
            .is_err());
        let ok = service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![
                    Json::object(vec![("op", "audit".into())]),
                    Json::object(vec![("op", "search".into())]),
                    Json::object(vec![]),
                ]),
            )]))
            .unwrap();
        assert_eq!(ok.len(), 3);
    }

    fn register_request() -> String {
        Json::object(vec![
            ("csv", HOSPITAL_CSV.into()),
            ("sensitive", "Disease".into()),
            ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ])
        .to_string()
    }

    #[test]
    fn register_is_idempotent_and_handles_serve_audits() {
        let service = AuditService::new();
        let request = Json::parse(&register_request()).unwrap();
        let first = service.register_table(&request).unwrap();
        assert_eq!(first.get("created").unwrap().as_bool(), Some(true));
        let id = first.get("id").unwrap().as_str().unwrap().to_owned();
        assert_eq!(
            first
                .get("rollup")
                .unwrap()
                .get("table_scans")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Same content again: same handle, nothing rebuilt.
        let second = service.register_table(&request).unwrap();
        assert_eq!(second.get("created").unwrap().as_bool(), Some(false));
        assert_eq!(second.get("id").unwrap().as_str(), Some(id.as_str()));

        // A handle audit matches the one-shot audit bit for bit.
        let params = Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]);
        let via_handle = service.session_audit(&id, &params).unwrap();
        let oneshot = service
            .audit(&Json::parse(&audit_request()).unwrap())
            .unwrap();
        assert_eq!(
            via_handle
                .get("max_disclosure")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            oneshot
                .get("max_disclosure")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits()
        );
        assert_eq!(via_handle.get("safe"), oneshot.get("safe"));
        assert_eq!(via_handle.get("witness"), oneshot.get("witness"));
        assert_eq!(via_handle.get("id").unwrap().as_str(), Some(id.as_str()));

        // Info and drop; dropped handles answer 404.
        let info = service.table_info(&id).unwrap();
        assert_eq!(info.get("rows").unwrap().as_u64(), Some(6));
        service.drop_table(&id).unwrap();
        assert!(matches!(
            service.session_audit(&id, &params),
            Err(ServeError::UnknownTable(_))
        ));
        assert!(matches!(
            service.drop_table(&id),
            Err(ServeError::UnknownTable(_))
        ));
    }

    #[test]
    fn handle_search_matches_oneshot_search() {
        let service = AuditService::new();
        let request = Json::parse(
            &Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                (
                    "hierarchy",
                    Json::object(vec![("Age", Json::Array(vec![4u64.into(), 8u64.into()]))]),
                ),
            ])
            .to_string(),
        )
        .unwrap();
        let id = service
            .register_table(&request)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let params = Json::object(vec![
            ("k", 1u64.into()),
            ("c", 0.9.into()),
            ("threads", 2u64.into()),
            ("schedule", "steal".into()),
        ]);
        let via_handle = service.session_search(&id, &params).unwrap();
        // One-shot with the same table, hierarchy, and params.
        let mut oneshot_request = request.clone();
        if let Json::Object(pairs) = &mut oneshot_request {
            pairs.push(("k".into(), 1u64.into()));
            pairs.push(("c".into(), 0.9.into()));
            pairs.push(("threads".into(), 2u64.into()));
            pairs.push(("schedule".into(), "steal".into()));
        }
        let oneshot = service.search(&oneshot_request).unwrap();
        assert_eq!(via_handle.get("minimal"), oneshot.get("minimal"));
        assert_eq!(via_handle.get("evaluated"), oneshot.get("evaluated"));
        assert_eq!(via_handle.get("satisfied"), oneshot.get("satisfied"));
        // Repeated handle searches never rescan: cumulative scans stay 1.
        service.session_search(&id, &params).unwrap();
        let via_handle = service.session_search(&id, &params).unwrap();
        assert_eq!(
            via_handle
                .get("rollup")
                .unwrap()
                .get("table_scans")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn release_and_composition_flow() {
        let service = AuditService::new();
        let id = service
            .register_table(&Json::parse(&register_request()).unwrap())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        // Composing before any release is a 400.
        let params = Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]);
        assert!(matches!(
            service.session_composition(&id, &params),
            Err(ServeError::BadRequest(_))
        ));
        // Release the top (full suppression: 1 bucket), then by-Sex. Both
        // qi columns carry 2-level suppression hierarchies here.
        let top = Json::object(vec![("node", Json::Array(vec![1u64.into(), 1u64.into()]))]);
        let r = service.session_release(&id, &top).unwrap();
        assert_eq!(r.get("buckets").unwrap().as_u64(), Some(1));
        let by_sex = Json::object(vec![("node", Json::Array(vec![1u64.into(), 0u64.into()]))]);
        let r = service.session_release(&id, &by_sex).unwrap();
        assert_eq!(r.get("index").unwrap().as_u64(), Some(1));
        let out = service.session_composition(&id, &params).unwrap();
        assert_eq!(out.get("releases").unwrap().as_u64(), Some(2));
        assert_eq!(out.get("buckets").unwrap().as_u64(), Some(3));
        assert!(out.get("max_disclosure").unwrap().as_f64().unwrap() > 0.0);
        // Bad node shape is a 400.
        assert!(matches!(
            service.session_release(&id, &Json::object(vec![("node", "x".into())])),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn session_budget_evicts_lru_handles() {
        let service = AuditService::with_limits(ServiceLimits {
            session_budget: Some(8),
            ..Default::default()
        });
        // Three distinct 6-row tables (weight 6 each, all rows distinct):
        // only one fits an 8-group budget at a time.
        let mut ids = Vec::new();
        for variant in 0..3 {
            let csv = format!(
                "Age,Sex,Disease\n2{variant},M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n"
            );
            let request = Json::object(vec![
                ("csv", csv.into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
            ]);
            let out = service.register_table(&request).unwrap();
            ids.push(out.get("id").unwrap().as_str().unwrap().to_owned());
        }
        // The latest handle lives; earlier ones were evicted.
        let params = Json::object(vec![("k", 1u64.into())]);
        assert!(service.session_audit(&ids[2], &params).is_ok());
        assert!(matches!(
            service.session_audit(&ids[0], &params),
            Err(ServeError::UnknownTable(_))
        ));
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        let sessions = stats.get("sessions").unwrap();
        assert_eq!(sessions.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(sessions.get("evictions").unwrap().as_u64(), Some(2));
        assert_eq!(sessions.get("registered").unwrap().as_u64(), Some(3));
        // Re-registering an evicted handle brings it back.
        let csv =
            "Age,Sex,Disease\n20,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n";
        let request = Json::object(vec![
            ("csv", csv.into()),
            ("sensitive", "Disease".into()),
            ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ]);
        let again = service.register_table(&request).unwrap();
        assert_eq!(again.get("created").unwrap().as_bool(), Some(true));
        assert_eq!(again.get("id").unwrap().as_str(), Some(ids[0].as_str()));
    }

    #[test]
    fn stats_report_per_session_rollups() {
        let service = AuditService::new();
        let id = service
            .register_table(&Json::parse(&register_request()).unwrap())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let params = Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]);
        service.session_search(&id, &params).unwrap();
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        let per_session = stats
            .get("sessions")
            .unwrap()
            .get("per_session")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(per_session.len(), 1);
        let entry = &per_session[0];
        assert_eq!(entry.get("id").unwrap().as_str(), Some(id.as_str()));
        let rollup = entry.get("rollup").unwrap();
        assert_eq!(rollup.get("table_scans").unwrap().as_u64(), Some(1));
        assert!(rollup.get("derived").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn session_batch_jobs_validate_shape() {
        let service = AuditService::new();
        let id = service
            .register_table(&Json::parse(&register_request()).unwrap())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert!(matches!(
            service.session_batch_jobs("nope", &Json::object(vec![])),
            Err(ServeError::UnknownTable(_))
        ));
        assert!(service
            .session_batch_jobs(&id, &Json::object(vec![]))
            .is_err());
        assert!(service
            .session_batch_jobs(&id, &Json::object(vec![("jobs", Json::Array(vec![]))]))
            .is_err());
        let (session, jobs) = service
            .session_batch_jobs(
                &id,
                &Json::object(vec![(
                    "jobs",
                    Json::Array(vec![
                        Json::object(vec![("op", "audit".into()), ("k", 1u64.into())]),
                        Json::object(vec![
                            ("op", "search".into()),
                            ("k", 1u64.into()),
                            ("c", 0.9.into()),
                        ]),
                    ]),
                )]),
            )
            .unwrap();
        assert_eq!(jobs.len(), 2);
        // Jobs run clean against the session; results carry the handle id.
        for job in &jobs {
            let out = service.run_session_job(&id, &session, job);
            assert!(out.get("error").is_none(), "{out}");
            assert_eq!(out.get("id").unwrap().as_str(), Some(id.as_str()));
        }
        // A bad job embeds its error instead of failing the batch.
        let out =
            service.run_session_job(&id, &session, &Json::object(vec![("op", "search".into())]));
        assert!(out.get("error").is_some(), "{out}");
    }

    #[test]
    fn run_job_embeds_errors() {
        let service = AuditService::new();
        let out = service.run_job(&Json::object(vec![("op", "audit".into())]));
        assert!(out.get("error").is_some(), "{out}");
        let ok = service.run_job(&Json::parse(&audit_request()).unwrap());
        assert!(ok.get("error").is_none(), "{ok}");
        assert_eq!(ok.get("op").unwrap().as_str(), Some("audit"));
    }
}
