//! The audit service: JSON requests in, engine-backed verdicts out.
//!
//! One [`AuditService`] lives for the whole server process and is shared by
//! every connection handler. It owns the state that makes a long-running
//! service faster than one-shot CLI runs:
//!
//! * a registry of [`DisclosureEngine`]s, one per attacker power `k`, so
//!   MINIMIZE1 tables memoized by *any* request are reused by every later
//!   request whose buckets share a histogram (the sequential-release
//!   workload: re-audits of overlapping tables hit the cache);
//! * accumulated roll-up counters from every search, surfaced by `/stats`.
//!
//! Results are **bit-identical** to the CLI `audit`/`search` paths: tables
//! are built with the same schema rules, bucketized by the same grouping,
//! and judged by the same engine code — only the transport differs (JSON
//! numbers serialize via shortest-round-trip formatting, so not even the
//! last bit of an `f64` is lost).

use std::collections::HashMap;
use std::io::BufReader;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use wcbk_anonymize::{
    default_threads, find_minimal_safe_report, CkSafetyCriterion, PrivacyCriterion, Schedule,
    SearchConfig, SearchReport,
};
use wcbk_core::{Bucketization, CkSafety, DisclosureEngine};
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy, RollupStats};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

use crate::json::Json;

/// A request the service could not satisfy.
#[derive(Debug)]
pub enum ServeError {
    /// The client's request is invalid (missing fields, bad CSV, unknown
    /// columns, parameters out of range) — an HTTP 400.
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest(message.into())
}

/// Accumulated roll-up counters across every search the service ran.
#[derive(Default)]
struct RollupTotals {
    searches: AtomicU64,
    table_scans: AtomicU64,
    derived: AtomicU64,
    ancestor_derived: AtomicU64,
    memo_hits: AtomicU64,
    evictions: AtomicU64,
    /// Largest retained memo weight (groups) any single search reached.
    peak_memo_groups: AtomicU64,
}

impl RollupTotals {
    fn absorb(&self, stats: &RollupStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.table_scans
            .fetch_add(stats.table_scans, Ordering::Relaxed);
        self.derived.fetch_add(stats.derived, Ordering::Relaxed);
        self.ancestor_derived
            .fetch_add(stats.ancestor_derived, Ordering::Relaxed);
        self.memo_hits.fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.evictions.fetch_add(stats.evictions, Ordering::Relaxed);
        self.peak_memo_groups
            .fetch_max(stats.memo_groups, Ordering::Relaxed);
    }
}

/// Shared per-process audit state — see the module docs.
#[derive(Default)]
pub struct AuditService {
    /// One shared engine per attacker power `k`.
    engines: RwLock<HashMap<usize, Arc<DisclosureEngine>>>,
    rollup: RollupTotals,
    audits: AtomicU64,
    searches: AtomicU64,
    batches: AtomicU64,
    batch_tables: AtomicU64,
    bad_requests: AtomicU64,
}

impl AuditService {
    /// Creates an empty service (engines materialize on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared engine for attacker power `k`, created on first request.
    pub fn engine(&self, k: usize) -> Arc<DisclosureEngine> {
        if let Some(engine) = self
            .engines
            .read()
            .expect("engine registry poisoned")
            .get(&k)
        {
            return Arc::clone(engine);
        }
        let mut engines = self.engines.write().expect("engine registry poisoned");
        Arc::clone(
            engines
                .entry(k)
                .or_insert_with(|| Arc::new(DisclosureEngine::new(k))),
        )
    }

    /// Handles `POST /audit`: bucketize by the exact quasi-identifiers and
    /// report maximum disclosure (and the (c,k)-safety verdict when `c` is
    /// given), exactly like `wcbk audit`.
    pub fn audit(&self, request: &Json) -> Result<Json, ServeError> {
        let table = table_from_request(request)?;
        let k = optional_usize(request, "k")?.unwrap_or(3);
        let c = optional_f64(request, "c")?;
        let qi_names = string_list(request, "qi")?;
        let qi_cols = resolve_columns(&table, &qi_names)?;
        let b = bucketize_exact(&table, &qi_cols)?;
        let engine = self.engine(k);
        let worst = engine
            .max_disclosure(&b)
            .map_err(|e| bad(format!("disclosure: {e}")))?;
        let safe = match c {
            Some(c) => {
                let safety = CkSafety::new(c, k).map_err(|e| bad(e.to_string()))?;
                Some(
                    safety
                        .is_safe_with(&engine, &b)
                        .map_err(|e| bad(format!("safety: {e}")))?,
                )
            }
            None => None,
        };
        self.audits.fetch_add(1, Ordering::Relaxed);
        Ok(Json::object(vec![
            ("op", "audit".into()),
            ("buckets", b.n_buckets().into()),
            ("tuples", b.n_tuples().into()),
            ("domain", b.domain_size().into()),
            ("k", k.into()),
            ("max_disclosure", worst.value.into()),
            (
                "witness",
                Json::object(vec![
                    ("predicts", worst.witness.consequent.to_string().into()),
                    ("knowing", worst.witness.knowledge().to_string().into()),
                ]),
            ),
            ("c", c.map(Json::from).unwrap_or(Json::Null)),
            ("safe", safe.map(Json::from).unwrap_or(Json::Null)),
        ]))
    }

    /// Handles `POST /search`: minimal (c,k)-safe generalizations over the
    /// request's hierarchies, honoring `threads` / `schedule` / `memo_cap`,
    /// exactly like `wcbk search` — but through the **shared** engine for
    /// that `k`, so repeated searches reuse each other's MINIMIZE1 tables.
    pub fn search(&self, request: &Json) -> Result<Json, ServeError> {
        let table = table_from_request(request)?;
        let k = optional_usize(request, "k")?.unwrap_or(3);
        let c = optional_f64(request, "c")?.ok_or_else(|| bad("search needs \"c\""))?;
        let qi_names = string_list(request, "qi")?;
        if qi_names.is_empty() {
            return Err(bad("search needs a non-empty \"qi\" list"));
        }
        let config = search_config(request)?;
        let lattice = build_lattice(&table, &qi_names, request)?;
        let criterion =
            CkSafetyCriterion::with_engine(c, self.engine(k)).map_err(|e| bad(e.to_string()))?;
        let SearchReport { outcome, rollup } =
            find_minimal_safe_report(&table, &lattice, &criterion, &config)
                .map_err(|e| bad(format!("search: {e}")))?;
        if let Some(stats) = &rollup {
            self.rollup.absorb(stats);
        }
        self.searches.fetch_add(1, Ordering::Relaxed);
        let minimal: Vec<Json> = outcome
            .minimal_nodes
            .iter()
            .map(|node| Json::Array(node.0.iter().map(|&l| l.into()).collect()))
            .collect();
        Ok(Json::object(vec![
            ("op", "search".into()),
            ("criterion", criterion.name().into()),
            (
                "qi",
                Json::Array(qi_names.iter().map(|n| n.as_str().into()).collect()),
            ),
            ("nodes", lattice.n_nodes().into()),
            ("evaluated", outcome.evaluated.into()),
            ("satisfied", outcome.satisfied.into()),
            ("safe", (!outcome.minimal_nodes.is_empty()).into()),
            ("minimal", Json::Array(minimal)),
            (
                "rollup",
                rollup.as_ref().map(rollup_json).unwrap_or(Json::Null),
            ),
        ]))
    }

    /// Validates a `POST /batch` request, returning the job list (each an
    /// `audit`/`search` object as taken by [`audit`](Self::audit) and
    /// [`search`](Self::search), selected by its `"op"` field).
    pub fn batch_jobs(&self, request: &Json) -> Result<Vec<Json>, ServeError> {
        let tables = request
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("batch needs a \"tables\" array"))?;
        if tables.is_empty() {
            return Err(bad("batch needs at least one table"));
        }
        for (i, job) in tables.iter().enumerate() {
            if job.as_object().is_none() {
                return Err(bad(format!("tables[{i}] is not an object")));
            }
            match job.get("op").map(|op| op.as_str()) {
                None => {}
                Some(Some("audit" | "search")) => {}
                Some(other) => {
                    return Err(bad(format!(
                        "tables[{i}].op must be \"audit\" or \"search\", got {other:?}"
                    )))
                }
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        Ok(tables.to_vec())
    }

    /// Runs one batch job to a result object — never fails; job-level
    /// errors are embedded as `{"error": …}` so one bad table cannot sink
    /// its batch.
    pub fn run_job(&self, job: &Json) -> Json {
        let result = match job.get("op").and_then(Json::as_str).unwrap_or("audit") {
            "search" => self.search(job),
            _ => self.audit(job),
        };
        self.batch_tables.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(v) => v,
            Err(e) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                Json::object(vec![("error", e.to_string().into())])
            }
        }
    }

    /// Counts one request rejected before reaching a handler.
    pub fn count_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The `/stats` body: engine cache totals (per `k` and summed), the
    /// accumulated roll-up counters, and service-level request counts. The
    /// caller (the server) appends its own section.
    pub fn stats(&self) -> Vec<(&'static str, Json)> {
        let engines = self.engines.read().expect("engine registry poisoned");
        let mut per_k: Vec<(usize, Json)> = engines
            .iter()
            .map(|(&k, engine)| {
                let s = engine.stats();
                (
                    k,
                    Json::object(vec![
                        ("k", k.into()),
                        ("hits", s.hits.into()),
                        ("misses", s.misses.into()),
                        ("entries", s.entries.into()),
                        ("hit_rate", s.hit_rate().into()),
                    ]),
                )
            })
            .collect();
        per_k.sort_by_key(|&(k, _)| k);
        let (hits, misses, entries) = engines.values().fold((0u64, 0u64, 0usize), |acc, e| {
            let s = e.stats();
            (acc.0 + s.hits, acc.1 + s.misses, acc.2 + s.entries)
        });
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        vec![
            (
                "engine_cache",
                Json::object(vec![
                    ("engines", engines.len().into()),
                    ("hits", hits.into()),
                    ("misses", misses.into()),
                    ("entries", entries.into()),
                    ("hit_rate", hit_rate.into()),
                    (
                        "per_k",
                        Json::Array(per_k.into_iter().map(|(_, v)| v).collect()),
                    ),
                ]),
            ),
            (
                "rollup",
                Json::object(vec![
                    (
                        "searches",
                        self.rollup.searches.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "table_scans",
                        self.rollup.table_scans.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "derived",
                        self.rollup.derived.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "ancestor_derived",
                        self.rollup.ancestor_derived.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "memo_hits",
                        self.rollup.memo_hits.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "evictions",
                        self.rollup.evictions.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "peak_memo_groups",
                        self.rollup.peak_memo_groups.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "service",
                Json::object(vec![
                    ("audits", self.audits.load(Ordering::Relaxed).into()),
                    ("searches", self.searches.load(Ordering::Relaxed).into()),
                    ("batches", self.batches.load(Ordering::Relaxed).into()),
                    (
                        "batch_tables",
                        self.batch_tables.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "bad_requests",
                        self.bad_requests.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
        ]
    }
}

fn rollup_json(stats: &RollupStats) -> Json {
    Json::object(vec![
        ("table_scans", stats.table_scans.into()),
        ("derived", stats.derived.into()),
        ("ancestor_derived", stats.ancestor_derived.into()),
        ("memo_hits", stats.memo_hits.into()),
        ("evictions", stats.evictions.into()),
        ("memo_entries", stats.memo_entries.into()),
        ("memo_groups", stats.memo_groups.into()),
        ("bottom_groups", stats.bottom_groups.into()),
    ])
}

fn optional_usize(request: &Json, key: &str) -> Result<Option<usize>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn optional_f64(request: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("\"{key}\" must be a number"))),
    }
}

/// An optional list of strings (absent → empty).
fn string_list(request: &Json, key: &str) -> Result<Vec<String>, ServeError> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| bad(format!("\"{key}\" must be an array of strings")))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad(format!("\"{key}\" must be an array of strings")))
            })
            .collect(),
    }
}

/// Parses `threads` / `schedule` / `memo_cap` (alias `memo-cap`) into a
/// [`SearchConfig`] with the same defaults and spellings as the CLI.
/// `threads` is capped at the machine's core count — it is a
/// client-supplied number on a network surface, and the scheduler's own
/// clamp (lattice size) is *also* client-controlled via `hierarchy`.
fn search_config(request: &Json) -> Result<SearchConfig, ServeError> {
    let threads = optional_usize(request, "threads")?
        .unwrap_or(1)
        .min(default_threads());
    let schedule = match request.get("schedule") {
        None | Some(Json::Null) => Schedule::default(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("\"schedule\" must be a string"))?
            .parse::<Schedule>()
            .map_err(bad)?,
    };
    let memo_capacity = match optional_usize(request, "memo_cap")? {
        Some(n) => Some(n),
        None => optional_usize(request, "memo-cap")?,
    };
    Ok(SearchConfig {
        threads,
        schedule,
        memo_capacity,
    })
}

/// Builds the generalization lattice for `qi` from the request's
/// `"hierarchy"` object (`{"Age": [5, 10], …}` — interval widths per
/// column; unlisted columns get suppression hierarchies), mirroring the
/// CLI's `--hierarchy COL:W1,W2,…` flags.
fn build_lattice(
    table: &Table,
    qi: &[String],
    request: &Json,
) -> Result<GeneralizationLattice, ServeError> {
    let specs: Vec<(String, Vec<u64>)> = match request.get("hierarchy") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => v
            .as_object()
            .ok_or_else(|| bad("\"hierarchy\" must be an object of column -> widths"))?
            .iter()
            .map(|(col, widths)| {
                let widths = widths
                    .as_array()
                    .ok_or_else(|| bad(format!("hierarchy {col:?}: widths must be an array")))?
                    .iter()
                    .map(|w| {
                        w.as_u64()
                            .ok_or_else(|| bad(format!("hierarchy {col:?}: bad width")))
                    })
                    .collect::<Result<Vec<u64>, ServeError>>()?;
                Ok((col.clone(), widths))
            })
            .collect::<Result<_, ServeError>>()?,
    };
    for (col, _) in &specs {
        if !qi.contains(col) {
            return Err(bad(format!("hierarchy column {col:?} is not a qi column")));
        }
    }
    let dims = qi
        .iter()
        .map(|name| {
            let col = table
                .schema()
                .index_of(name)
                .map_err(|e| bad(e.to_string()))?;
            let dict = table.column(col).dictionary();
            let hierarchy = match specs.iter().find(|(sc, _)| sc == name) {
                Some((_, widths)) => {
                    Hierarchy::intervals(name, dict, widths).map_err(|e| bad(e.to_string()))?
                }
                None => Hierarchy::suppression(name, dict),
            };
            Ok((col, hierarchy))
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    GeneralizationLattice::new(dims).map_err(|e| bad(e.to_string()))
}

fn resolve_columns(table: &Table, names: &[String]) -> Result<Vec<usize>, ServeError> {
    names
        .iter()
        .map(|n| table.schema().index_of(n).map_err(|e| bad(e.to_string())))
        .collect()
}

/// Buckets by the exact quasi-identifier codes (the `wcbk audit` grouping);
/// no quasi-identifiers means one bucket holding every tuple.
fn bucketize_exact(table: &Table, qi_cols: &[usize]) -> Result<Bucketization, ServeError> {
    let b = if qi_cols.is_empty() {
        Bucketization::from_grouping(table, |_| 0u8)
    } else {
        Bucketization::from_grouping(table, |t| {
            qi_cols
                .iter()
                .map(|&col| table.column(col).code(t.index()))
                .collect::<Vec<u32>>()
        })
    };
    b.map_err(|e| bad(format!("bucketize: {e}")))
}

/// Builds a [`Table`] from the request: either `"csv"` (text, first record
/// the header) or `"columns"` + `"rows"` (inline). Column roles follow the
/// CLI: `"sensitive"` names the sensitive column, `"qi"` columns are
/// quasi-identifiers, everything else insensitive.
pub fn table_from_request(request: &Json) -> Result<Table, ServeError> {
    if request.as_object().is_none() {
        return Err(bad("request body must be a JSON object"));
    }
    let sensitive = request
        .get("sensitive")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"sensitive\" column name"))?;
    let qi = string_list(request, "qi")?;

    let (names, rows): (Vec<String>, Vec<Vec<String>>) = match request.get("csv") {
        Some(csv) => {
            let text = csv
                .as_str()
                .ok_or_else(|| bad("\"csv\" must be a string"))?;
            let mut reader = wcbk_table::csv::CsvReader::new(BufReader::new(text.as_bytes()));
            let header = reader
                .next_record()
                .map_err(|e| bad(format!("csv: {e}")))?
                .ok_or_else(|| bad("csv is empty"))?;
            let names = header.iter().map(|s| s.trim().to_owned()).collect();
            let mut rows = Vec::new();
            while let Some(record) = reader.next_record().map_err(|e| bad(format!("csv: {e}")))? {
                rows.push(record);
            }
            (names, rows)
        }
        None => {
            let names = string_list(request, "columns")?;
            if names.is_empty() {
                return Err(bad("need \"csv\" text or \"columns\" + \"rows\""));
            }
            let rows = request
                .get("rows")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("\"rows\" must be an array of arrays"))?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| bad("\"rows\" must be an array of arrays"))?
                        .iter()
                        .map(|cell| {
                            cell.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| bad("row cells must be strings"))
                        })
                        .collect::<Result<Vec<String>, ServeError>>()
                })
                .collect::<Result<Vec<_>, ServeError>>()?;
            (names, rows)
        }
    };

    let attributes: Vec<Attribute> = names
        .iter()
        .map(|n| {
            let kind = if n == sensitive {
                AttributeKind::Sensitive
            } else if qi.contains(n) {
                AttributeKind::QuasiIdentifier
            } else {
                AttributeKind::Insensitive
            };
            Attribute::new(n.clone(), kind)
        })
        .collect();
    let schema = Schema::new(attributes).map_err(|e| bad(e.to_string()))?;
    let mut builder = TableBuilder::new(schema);
    for row in &rows {
        let trimmed: Vec<&str> = row.iter().map(|s| s.trim()).collect();
        builder.push_row(&trimmed).map_err(|e| bad(e.to_string()))?;
    }
    let table = builder.build();
    if table.n_rows() == 0 {
        return Err(bad("table has no rows"));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOSPITAL_CSV: &str =
        "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n";

    fn audit_request() -> String {
        Json::object(vec![
            ("csv", HOSPITAL_CSV.into()),
            ("sensitive", "Disease".into()),
            ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
            ("k", 1u64.into()),
            ("c", 0.9.into()),
        ])
        .to_string()
    }

    #[test]
    fn audit_matches_direct_engine_path() {
        let service = AuditService::new();
        let request = Json::parse(&audit_request()).unwrap();
        let out = service.audit(&request).unwrap();

        // The same computation through the library directly.
        let table = table_from_request(&request).unwrap();
        let qi_cols = resolve_columns(&table, &["Age".into(), "Sex".into()]).unwrap();
        let b = bucketize_exact(&table, &qi_cols).unwrap();
        let engine = DisclosureEngine::new(1);
        let direct = engine.max_disclosure(&b).unwrap();
        assert_eq!(
            out.get("max_disclosure")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            direct.value.to_bits()
        );
        assert_eq!(
            out.get("safe").unwrap().as_bool(),
            Some(wcbk_core::is_ck_safe(&b, 0.9, 1).unwrap())
        );
        assert_eq!(out.get("buckets").unwrap().as_u64(), Some(6));
        assert_eq!(out.get("tuples").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn search_matches_library_search() {
        let service = AuditService::new();
        let request = Json::parse(
            &Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                ("k", 1u64.into()),
                ("c", 0.9.into()),
                ("threads", 2u64.into()),
                ("schedule", "steal".into()),
                ("memo_cap", 16u64.into()),
            ])
            .to_string(),
        )
        .unwrap();
        let out = service.search(&request).unwrap();

        let table = table_from_request(&request).unwrap();
        let lattice = build_lattice(&table, &["Age".into(), "Sex".into()], &request).unwrap();
        let criterion = CkSafetyCriterion::new(0.9, 1).unwrap();
        let config = SearchConfig {
            threads: 2,
            schedule: Schedule::WorkStealing,
            memo_capacity: Some(16),
        };
        let direct =
            wcbk_anonymize::find_minimal_safe_with(&table, &lattice, &criterion, &config).unwrap();
        let minimal = out.get("minimal").unwrap().as_array().unwrap();
        assert_eq!(minimal.len(), direct.minimal_nodes.len());
        for (got, want) in minimal.iter().zip(&direct.minimal_nodes) {
            let got: Vec<usize> = got
                .as_array()
                .unwrap()
                .iter()
                .map(|l| l.as_u64().unwrap() as usize)
                .collect();
            assert_eq!(got, want.0);
        }
        assert_eq!(
            out.get("evaluated").unwrap().as_u64(),
            Some(direct.evaluated as u64)
        );
        assert_eq!(
            out.get("satisfied").unwrap().as_u64(),
            Some(direct.satisfied as u64)
        );
        // The roll-up section made it into the response and the totals.
        assert!(out.get("rollup").unwrap().get("table_scans").is_some());
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        assert_eq!(
            stats
                .get("rollup")
                .unwrap()
                .get("searches")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn shared_engine_hits_across_requests() {
        let service = AuditService::new();
        let request = Json::parse(&audit_request()).unwrap();
        service.audit(&request).unwrap();
        service.audit(&request).unwrap();
        let stats = Json::Object(
            service
                .stats()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        let cache = stats.get("engine_cache").unwrap();
        assert!(
            cache.get("hits").unwrap().as_u64().unwrap() > 0,
            "second audit must hit the shared engine cache: {stats}"
        );
        assert_eq!(cache.get("engines").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn inline_rows_equal_csv() {
        let service = AuditService::new();
        let by_csv = service
            .audit(&Json::parse(&audit_request()).unwrap())
            .unwrap();
        let rows: Vec<Json> = HOSPITAL_CSV
            .lines()
            .skip(1)
            .map(|l| Json::Array(l.split(',').map(Json::from).collect()))
            .collect();
        let by_rows = service
            .audit(&Json::object(vec![
                (
                    "columns",
                    Json::Array(vec!["Age".into(), "Sex".into(), "Disease".into()]),
                ),
                ("rows", Json::Array(rows)),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                ("k", 1u64.into()),
                ("c", 0.9.into()),
            ]))
            .unwrap();
        assert_eq!(by_csv, by_rows);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        let service = AuditService::new();
        let cases: Vec<Json> = vec![
            Json::Array(vec![]),
            Json::object(vec![("csv", HOSPITAL_CSV.into())]), // no sensitive
            Json::object(vec![("sensitive", "Disease".into())]), // no data
            Json::object(vec![
                ("csv", "A,B\n".into()), // header only
                ("sensitive", "A".into()),
            ]),
            Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Nope".into()),
            ]),
            Json::object(vec![
                ("csv", HOSPITAL_CSV.into()),
                ("sensitive", "Disease".into()),
                ("k", (-1.0).into()),
            ]),
        ];
        for request in cases {
            assert!(service.audit(&request).is_err(), "{request} should fail");
        }
        // Search-specific: missing c, empty qi, hierarchy on non-qi column.
        let base = vec![
            ("csv", Json::from(HOSPITAL_CSV)),
            ("sensitive", "Disease".into()),
        ];
        let mut no_c = base.clone();
        no_c.push(("qi", Json::Array(vec!["Age".into()])));
        assert!(service.search(&Json::object(no_c)).is_err());
        let mut no_qi = base.clone();
        no_qi.push(("c", 0.9.into()));
        assert!(service.search(&Json::object(no_qi)).is_err());
        let mut bad_hier = base.clone();
        bad_hier.push(("c", 0.9.into()));
        bad_hier.push(("qi", Json::Array(vec!["Sex".into()])));
        bad_hier.push((
            "hierarchy",
            Json::object(vec![("Age", Json::Array(vec![5u64.into()]))]),
        ));
        assert!(service.search(&Json::object(bad_hier)).is_err());
    }

    #[test]
    fn batch_jobs_validate_shape() {
        let service = AuditService::new();
        assert!(service.batch_jobs(&Json::object(vec![])).is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![("tables", Json::Array(vec![]))]))
            .is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![Json::Null])
            )]))
            .is_err());
        assert!(service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![Json::object(vec![("op", "explode".into())])])
            )]))
            .is_err());
        let ok = service
            .batch_jobs(&Json::object(vec![(
                "tables",
                Json::Array(vec![
                    Json::object(vec![("op", "audit".into())]),
                    Json::object(vec![("op", "search".into())]),
                    Json::object(vec![]),
                ]),
            )]))
            .unwrap();
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn run_job_embeds_errors() {
        let service = AuditService::new();
        let out = service.run_job(&Json::object(vec![("op", "audit".into())]));
        assert!(out.get("error").is_some(), "{out}");
        let ok = service.run_job(&Json::parse(&audit_request()).unwrap());
        assert!(ok.get("error").is_none(), "{ok}");
        assert_eq!(ok.get("op").unwrap().as_str(), Some("audit"));
    }
}
