//! Minimal JSON value, parser, and writer.
//!
//! The sanctioned dependency set has no JSON crate (the build environment
//! has no registry access), so this module implements the subset the audit
//! service needs: the full value model, a recursive-descent parser with a
//! depth limit, and a writer whose `f64` formatting is the shortest string
//! that round-trips — so numeric results survive an HTTP hop bit-for-bit.

use std::fmt;

/// A JSON value. Object keys keep insertion order (no sorting, no dedup at
/// the type level), so responses render in the order handlers build them.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; serialized via Rust's shortest round-trip formatting.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest permitted nesting; guards the recursive parser against
/// stack-overflow payloads.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            text,
            bytes,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Builds an object from ordered pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up `key` in an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Number(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever advances by
                    // whole ASCII bytes or whole chars, so it sits on a char
                    // boundary of the (valid) input.
                    let ch = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact serialization (no added whitespace). Numbers use Rust's
    /// shortest round-trip formatting, so `Json::parse(x.to_string())`
    /// reproduces `x` bit-for-bit for finite values; non-finite numbers
    /// (which JSON cannot express) render as `null`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) if n.is_finite() => write!(f, "{n}"),
            Json::Number(_) => f.write_str("null"),
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Number(-50.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::String("hi".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair (😀 = U+1F600).
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"\x01\"",
            "nul",
            "[1] garbage",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for x in [
            0.7,
            1.0 / 3.0,
            2.0f64.powi(-40),
            6.02e23,
            -0.0,
            123_456_789.125,
        ] {
            let text = Json::Number(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn display_round_trips_structures() {
        let text = r#"{"op":"audit","xs":[1,2.5,null,true],"s":"a\"b\n"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn accessor_types_are_strict() {
        let v = Json::parse(r#"{"n": 1.5, "i": 3, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("i").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
