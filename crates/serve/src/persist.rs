//! The catalog payload a registered session persists as.
//!
//! The durable store maps fingerprints to opaque bytes; this module defines
//! what the audit service puts in them: the request-level registration
//! parameters (quasi-identifier names, sensitive column, memo/scan knobs)
//! wrapped around the hierarchy crate's stable dataset encoding. Magic
//! `WCBKSS01` versions the wrapper independently of the inner format.
//!
//! Release records are **not** in the payload — they live as the store's
//! append-only per-dataset history, one record per release, so a release
//! append never rewrites the dataset. A release audited under the default
//! conjunction adversary persists as a bare
//! [`wcbk_hierarchy::encode_node`] record (the pre-model format, readable
//! both ways); one audited under any other [`ModelId`] is wrapped with
//! magic `WCBKRL01` plus the model's registry index, so rehydration
//! replays the node **under the model it was audited with**.

use wcbk_anonymize::{DatasetSession, ModelId, MODEL_IDS};
use wcbk_hierarchy::{decode_dataset, encode_dataset, GenNode, GeneralizationLattice};
use wcbk_table::Table;

const MAGIC: &[u8; 8] = b"WCBKSS01";
const RELEASE_MAGIC: &[u8; 8] = b"WCBKRL01";

/// A decoded registration payload: everything needed to rebuild the
/// [`DatasetSession`] exactly as it was registered.
pub struct SessionPayload {
    /// Quasi-identifier column names, in registration order.
    pub qi: Vec<String>,
    /// The sensitive column name.
    pub sensitive: String,
    /// The session's memo budget (`None` = unbounded).
    pub memo_capacity: Option<usize>,
    /// The session's scan thread count.
    pub scan_threads: usize,
    /// The registered table.
    pub table: Table,
    /// The registered lattice.
    pub lattice: GeneralizationLattice,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes a session plus its registration parameters.
pub fn encode_session(session: &DatasetSession, qi: &[String], sensitive: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u64(&mut buf, qi.len() as u64);
    for name in qi {
        put_str(&mut buf, name);
    }
    put_str(&mut buf, sensitive);
    match session.memo_capacity() {
        Some(cap) => {
            buf.push(1);
            put_u64(&mut buf, cap as u64);
        }
        None => buf.push(0),
    }
    put_u64(&mut buf, session.scan_threads() as u64);
    let dataset = encode_dataset(session.table(), session.lattice());
    put_u64(&mut buf, dataset.len() as u64);
    buf.extend_from_slice(&dataset);
    buf
}

/// Serializes one release record. Conjunction releases keep the bare node
/// encoding — byte-identical to every record written before models
/// existed — so old catalogs replay unchanged and new conjunction-only
/// catalogs stay readable by old binaries.
pub fn encode_release(node: &GenNode, model: ModelId) -> Vec<u8> {
    let inner = wcbk_hierarchy::encode_node(node);
    if model == ModelId::Conjunction {
        return inner;
    }
    let mut buf = Vec::with_capacity(RELEASE_MAGIC.len() + 1 + inner.len());
    buf.extend_from_slice(RELEASE_MAGIC);
    buf.push(model.index() as u8);
    buf.extend_from_slice(&inner);
    buf
}

/// Decodes a release record written by [`encode_release`] (or by a
/// pre-model binary — any record without the wrapper magic is a bare node
/// audited under the conjunction model).
pub fn decode_release(bytes: &[u8]) -> Result<(GenNode, ModelId), String> {
    let Some(rest) = bytes.strip_prefix(RELEASE_MAGIC.as_slice()) else {
        let node = wcbk_hierarchy::decode_node(bytes).map_err(|e| e.to_string())?;
        return Ok((node, ModelId::Conjunction));
    };
    let (&index, inner) = rest
        .split_first()
        .ok_or_else(|| "truncated release record: missing model index".to_owned())?;
    let model = *MODEL_IDS
        .get(index as usize)
        .ok_or_else(|| format!("unknown adversary-model index {index} in release record"))?;
    let node = wcbk_hierarchy::decode_node(inner).map_err(|e| e.to_string())?;
    Ok((node, model))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated payload: wanted {n} bytes for {what}"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn len(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u64(what)?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(format!("{what}: length {n} exceeds payload"));
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(what)?;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| format!("{what}: invalid UTF-8"))
    }
}

/// Decodes [`encode_session`] output, re-validating the inner dataset
/// through its constructors.
pub fn decode_session(bytes: &[u8]) -> Result<SessionPayload, String> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(8, "payload magic")? != MAGIC {
        return Err("session payload magic mismatch".into());
    }
    let n_qi = c.len("qi count")?;
    let qi = (0..n_qi)
        .map(|i| c.str(&format!("qi name {i}")))
        .collect::<Result<Vec<_>, _>>()?;
    let sensitive = c.str("sensitive name")?;
    let memo_capacity = match c.take(1, "memo flag")?[0] {
        0 => None,
        1 => Some(c.u64("memo capacity")? as usize),
        other => return Err(format!("bad memo flag {other}")),
    };
    let scan_threads = c.u64("scan threads")? as usize;
    let n = c.len("dataset length")?;
    let dataset = c.take(n, "dataset bytes")?;
    if c.pos != bytes.len() {
        return Err("trailing bytes after session payload".into());
    }
    let (table, lattice) = decode_dataset(dataset).map_err(|e| e.to_string())?;
    Ok(SessionPayload {
        qi,
        sensitive,
        memo_capacity,
        scan_threads,
        table,
        lattice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_anonymize::SessionOptions;
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn session() -> (DatasetSession, Vec<String>, String) {
        let table = hospital_table();
        let zip = table.column(1).dictionary().clone();
        let lattice =
            GeneralizationLattice::new(vec![(1, Hierarchy::suppression("Zip", &zip))]).unwrap();
        let session = DatasetSession::with_options(
            table,
            lattice,
            SessionOptions {
                memo_capacity: Some(512),
                engines: None,
                scan_threads: 2,
            },
        )
        .unwrap();
        (session, vec!["Zip".to_owned()], "Disease".to_owned())
    }

    #[test]
    fn payload_round_trips_with_identical_fingerprint() {
        let (session, qi, sensitive) = session();
        let bytes = encode_session(&session, &qi, &sensitive);
        let payload = decode_session(&bytes).unwrap();
        assert_eq!(payload.qi, qi);
        assert_eq!(payload.sensitive, sensitive);
        assert_eq!(payload.memo_capacity, Some(512));
        assert_eq!(payload.scan_threads, 2);
        assert_eq!(
            wcbk_hierarchy::dataset_fingerprint(&payload.table, &payload.lattice),
            session.fingerprint()
        );
    }

    #[test]
    fn release_records_round_trip_every_model() {
        let node = GenNode(vec![1, 0, 2]);
        for model in MODEL_IDS {
            let bytes = encode_release(&node, model);
            let (back, m) = decode_release(&bytes).unwrap();
            assert_eq!(back, node);
            assert_eq!(m, model);
        }
    }

    /// Conjunction records are byte-identical to the pre-model bare node
    /// encoding — old catalogs replay as conjunction, and conjunction-only
    /// catalogs stay readable by pre-model binaries.
    #[test]
    fn conjunction_release_records_stay_bare_nodes() {
        let node = GenNode(vec![2, 1]);
        let bytes = encode_release(&node, ModelId::Conjunction);
        assert_eq!(bytes, wcbk_hierarchy::encode_node(&node));
        let (back, model) = decode_release(&wcbk_hierarchy::encode_node(&node)).unwrap();
        assert_eq!(back, node);
        assert_eq!(model, ModelId::Conjunction);
    }

    #[test]
    fn corrupt_release_records_error() {
        assert!(decode_release(b"WCBKRL01").is_err(), "missing index");
        let mut bad_index = b"WCBKRL01".to_vec();
        bad_index.push(99);
        bad_index.extend_from_slice(&wcbk_hierarchy::encode_node(&GenNode(vec![0])));
        assert!(decode_release(&bad_index).is_err(), "unknown model index");
        let mut truncated = encode_release(&GenNode(vec![1, 1]), ModelId::Sequential);
        truncated.pop();
        assert!(decode_release(&truncated).is_err(), "truncated node");
    }

    #[test]
    fn corrupt_payloads_error() {
        let (session, qi, sensitive) = session();
        let bytes = encode_session(&session, &qi, &sensitive);
        assert!(decode_session(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_session(b"WCBKSS99").is_err());
        assert!(decode_session(&[]).is_err());
    }
}
