//! The server's metric surface: every `/metrics` series in one place.
//!
//! [`ServeMetrics`] wraps one process-wide [`MetricsRegistry`] and
//! pre-registers every family the server exports, so a fresh server scrapes
//! a complete (all-zero) exposition before the first request. Two kinds of
//! series live here:
//!
//! * **Live-recorded** — HTTP request counts/latency, reactor queue wait,
//!   response bytes, slow requests, and batch scheduler counters are
//!   recorded on the request path as they happen.
//! * **Scrape-synced** — engine-layer sources (roll-up scan/derive micros,
//!   MINIMIZE1 build time, WAL latencies) keep their own cumulative
//!   counters; [`ServeMetrics::sync`] mirrors them into registry counters
//!   with [`Counter::record_total`], which never moves backwards even when
//!   a source is reset (WAL checkpoint) or evicted (LRU pools).
//!
//! Metric names are documented for operators in `docs/OPERATIONS.md`.

use std::sync::Arc;

use wcbk_core::sched::ScheduleOutcome;
use wcbk_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::service::{AuditService, MetricTotals, MODEL_OPS};

/// Maps an HTTP status to its class label (`2xx`/`3xx`/`4xx`/`5xx`).
pub fn status_class(status: u16) -> &'static str {
    match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// All `/metrics` series, pre-registered on one shared registry.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    /// Reactor parse-complete → worker-dispatch wait.
    pub queue_wait: Arc<Histogram>,
    response_bytes: Arc<Counter>,
    slow_requests: Arc<Counter>,
    sched_steals: Arc<Counter>,
    sched_speculated: Arc<Counter>,
    sched_abandoned: Arc<Counter>,
    search_scan_micros: Arc<Counter>,
    search_derive_micros: Arc<Counter>,
    search_derived: Arc<Counter>,
    search_table_scans: Arc<Counter>,
    minimize1_build_micros: Arc<Counter>,
    wal_appends: Arc<Counter>,
    wal_append_micros: Arc<Counter>,
    wal_fsync_micros: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_micros: Arc<Counter>,
    sessions_count: Arc<Gauge>,
    sessions_groups: Arc<Gauge>,
    sessions_peak: Arc<Gauge>,
    engines_count: Arc<Gauge>,
    engines_groups: Arc<Gauge>,
    engines_peak: Arc<Gauge>,
    minimize1_groups: Arc<Gauge>,
    minimize1_peak: Arc<Gauge>,
    /// One counter per (model, op) pair, indexed
    /// `[ModelId::index()][op]` with ops ordered as [`MODEL_OPS`].
    model_requests: Vec<Arc<Counter>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Registers every family the server exports (zero-valued until traffic
    /// or a sync populates them).
    pub fn new() -> Self {
        let r = MetricsRegistry::new();
        // Touch the labelled HTTP families once so `# TYPE` lines exist on
        // a cold scrape; per-endpoint series appear as endpoints are hit.
        r.counter(
            "wcbk_http_requests_total",
            "HTTP requests served, by endpoint and status class.",
        );
        r.histogram(
            "wcbk_http_request_micros",
            "End-to-end request latency (parse + queue wait + handler), by endpoint.",
        );
        Self {
            queue_wait: r.histogram(
                "wcbk_http_queue_wait_micros",
                "Reactor wait between a request parsing completely and a worker picking it up.",
            ),
            response_bytes: r.counter(
                "wcbk_http_response_bytes_total",
                "Response body and header bytes handed to the reactor for writing.",
            ),
            slow_requests: r.counter(
                "wcbk_http_slow_requests_total",
                "Requests whose total latency met or exceeded --slow-request-ms.",
            ),
            sched_steals: r.counter(
                "wcbk_sched_steals_total",
                "Batch scheduler: nodes taken from a sibling worker's deque.",
            ),
            sched_speculated: r.counter(
                "wcbk_sched_speculated_total",
                "Batch scheduler: evaluations started speculatively.",
            ),
            sched_abandoned: r.counter(
                "wcbk_sched_abandoned_total",
                "Batch scheduler: speculative claims abandoned before evaluating.",
            ),
            search_scan_micros: r.counter(
                "wcbk_search_scan_micros_total",
                "Cumulative wall time of roll-up bottom table scans.",
            ),
            search_derive_micros: r.counter(
                "wcbk_search_derive_micros_total",
                "Cumulative wall time of roll-up node-table derivations.",
            ),
            search_derived: r.counter(
                "wcbk_search_derived_total",
                "Node tables derived by roll-up (cheapest-ancestor fold).",
            ),
            search_table_scans: r.counter(
                "wcbk_search_table_scans_total",
                "Full bottom scans performed by roll-up evaluators.",
            ),
            minimize1_build_micros: r.counter(
                "wcbk_minimize1_build_micros_total",
                "Cumulative wall time building MINIMIZE1 tables and bucket costs.",
            ),
            wal_appends: r.counter(
                "wcbk_store_wal_appends_total",
                "Durable-store WAL appends (never reset by checkpoints).",
            ),
            wal_append_micros: r.counter(
                "wcbk_store_wal_append_micros_total",
                "Cumulative wall time of WAL frame writes.",
            ),
            wal_fsync_micros: r.counter(
                "wcbk_store_wal_fsync_micros_total",
                "Cumulative wall time of WAL fsync (sync_data) calls.",
            ),
            checkpoints: r.counter(
                "wcbk_store_checkpoints_total",
                "Durable-store checkpoints taken.",
            ),
            checkpoint_micros: r.counter(
                "wcbk_store_checkpoint_micros_total",
                "Cumulative wall time writing checkpoints.",
            ),
            sessions_count: r.gauge_with(
                "wcbk_pool_entries",
                "Entries resident in an LRU pool.",
                &[("pool", "sessions")],
            ),
            sessions_groups: r.gauge_with(
                "wcbk_pool_groups",
                "Retained group weight of an LRU pool.",
                &[("pool", "sessions")],
            ),
            sessions_peak: r.gauge_with(
                "wcbk_pool_peak_groups",
                "High-water mark of an LRU pool's retained group weight.",
                &[("pool", "sessions")],
            ),
            engines_count: r.gauge_with(
                "wcbk_pool_entries",
                "Entries resident in an LRU pool.",
                &[("pool", "engines")],
            ),
            engines_groups: r.gauge_with(
                "wcbk_pool_groups",
                "Retained group weight of an LRU pool.",
                &[("pool", "engines")],
            ),
            engines_peak: r.gauge_with(
                "wcbk_pool_peak_groups",
                "High-water mark of an LRU pool's retained group weight.",
                &[("pool", "engines")],
            ),
            minimize1_groups: r.gauge_with(
                "wcbk_pool_groups",
                "Retained group weight of an LRU pool.",
                &[("pool", "minimize1")],
            ),
            minimize1_peak: r.gauge_with(
                "wcbk_pool_peak_groups",
                "High-water mark of an LRU pool's retained group weight.",
                &[("pool", "minimize1")],
            ),
            // Pre-register every (model, op) series so a cold scrape shows
            // the full adversary-model matrix at zero.
            model_requests: wcbk_anonymize::MODEL_IDS
                .iter()
                .flat_map(|m| {
                    MODEL_OPS.iter().map(|op| {
                        r.counter_with(
                            "wcbk_model_requests_total",
                            "Requests answered per adversary model and operation.",
                            &[("model", m.name()), ("op", op)],
                        )
                    })
                })
                .collect(),
            registry: r,
        }
    }

    /// Records one finished HTTP request: count (by endpoint and status
    /// class), end-to-end latency, and response bytes.
    pub fn record_http(&self, endpoint: &'static str, status: u16, micros: u64, bytes: u64) {
        self.registry
            .counter_with(
                "wcbk_http_requests_total",
                "HTTP requests served, by endpoint and status class.",
                &[("endpoint", endpoint), ("class", status_class(status))],
            )
            .inc();
        self.registry
            .histogram_with(
                "wcbk_http_request_micros",
                "End-to-end request latency (parse + queue wait + handler), by endpoint.",
                &[("endpoint", endpoint)],
            )
            .record(micros);
        self.response_bytes.add(bytes);
    }

    /// Counts one request past the `--slow-request-ms` threshold.
    pub fn record_slow(&self) {
        self.slow_requests.inc();
    }

    /// Folds one batch scheduler run's counters in.
    pub fn record_sched(&self, outcome: &ScheduleOutcome) {
        self.sched_steals.add(outcome.steals as u64);
        self.sched_speculated.add(outcome.speculated as u64);
        self.sched_abandoned.add(outcome.abandoned as u64);
    }

    /// Mirrors the engine/store-layer cumulative sources into the registry.
    /// Called at scrape time; safe against source resets and evictions
    /// because counters only move up ([`Counter::record_total`]).
    pub fn sync(&self, service: &AuditService) {
        let t: MetricTotals = service.metric_totals();
        self.search_scan_micros.record_total(t.scan_micros);
        self.search_derive_micros.record_total(t.derive_micros);
        self.search_derived.record_total(t.derived);
        self.search_table_scans.record_total(t.table_scans);
        self.minimize1_build_micros
            .record_total(t.minimize1_build_micros);
        self.sessions_count.set(t.session_count);
        self.sessions_groups.set(t.session_groups);
        self.sessions_peak.record_max(t.session_peak_groups);
        self.engines_count.set(t.engine_count);
        self.engines_groups.set(t.engine_groups);
        self.engines_peak.record_max(t.engine_peak_groups);
        self.minimize1_groups.set(t.minimize1_groups);
        self.minimize1_peak.record_max(t.minimize1_peak_groups);
        for (m, ops) in t.model_requests.iter().enumerate() {
            for (op, &count) in ops.iter().enumerate() {
                self.model_requests[m * MODEL_OPS.len() + op].record_total(count);
            }
        }
        if let Some(s) = t.store {
            self.wal_appends.record_total(s.wal_appends);
            self.wal_append_micros.record_total(s.wal_append_micros);
            self.wal_fsync_micros.record_total(s.wal_fsync_micros);
            self.checkpoints.record_total(s.checkpoints);
            self.checkpoint_micros.record_total(s.checkpoint_micros);
        }
    }

    /// Syncs, then renders the full Prometheus text exposition.
    pub fn render(&self, service: &AuditService) -> String {
        self.sync(service);
        self.registry.render()
    }
}
