//! Integration tests for the adversary-model plugin surface on the HTTP
//! service: `"model"` selection on `/audit`, `/search`, release and
//! composition endpoints, per-model `/metrics` families, and — the
//! durability pin — a non-conjunction release history that round-trips
//! through a server restart with byte-identical answers.

use std::fs;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;
use wcbk_serve::service::{AuditService, ServeError};
use wcbk_serve::{Server, ServerConfig};

const HOSPITAL_CSV: &str = "Age,Sex,Disease\n\
                            21,M,Flu\n22,F,Flu\n23,M,Cold\n24,F,Cold\n\
                            31,M,Flu\n32,F,Cold\n33,M,Cold\n34,F,Flu\n";

fn register_request() -> Json {
    Json::object(vec![
        ("csv", HOSPITAL_CSV.into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
    ])
}

fn audit_request(model: Option<&str>) -> Json {
    let mut fields = vec![
        ("csv", Json::from(HOSPITAL_CSV)),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
    ];
    if let Some(m) = model {
        fields.push(("model", m.into()));
    }
    Json::object(fields)
}

#[test]
fn unknown_model_is_a_400_listing_the_registry() {
    let service = AuditService::new();
    let err = service.audit(&audit_request(Some("bogus"))).unwrap_err();
    match err {
        ServeError::BadRequest(m) => {
            assert!(m.contains("conjunction"), "registry not listed: {m}");
            assert!(m.contains("sequential"), "registry not listed: {m}");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
}

/// `"model": "conjunction"` (and an absent model) keep the classic
/// response bytes — the plugin layer is invisible until opted into.
#[test]
fn conjunction_model_is_byte_identical_to_absent() {
    let service = AuditService::new();
    let classic = service.audit(&audit_request(None)).unwrap().to_string();
    let tagged = service
        .audit(&audit_request(Some("conjunction")))
        .unwrap()
        .to_string();
    assert_eq!(classic, tagged);
    assert!(!classic.contains("\"model\""));
}

#[test]
fn model_audits_report_their_language_and_witness() {
    let service = AuditService::new();
    for model in ["distribution", "minimality", "sequential"] {
        let out = service.audit(&audit_request(Some(model))).unwrap();
        assert_eq!(out.get("model").and_then(Json::as_str), Some(model));
        let value = out.get("max_disclosure").and_then(Json::as_f64).unwrap();
        assert!(value > 0.0 && value <= 1.0, "{model}: {value}");
        let witness = out.get("witness").unwrap();
        assert!(!witness
            .get("predicts")
            .and_then(Json::as_str)
            .unwrap()
            .is_empty());
    }
}

/// Searching under a model threads it into the criterion (visible in the
/// criterion name) and tags the response.
#[test]
fn model_search_uses_the_model_criterion() {
    let service = AuditService::new();
    let mut request = audit_request(Some("minimality"));
    if let Json::Object(fields) = &mut request {
        fields.push((
            "hierarchy".to_owned(),
            Json::object(vec![("Age", Json::Array(vec![10u64.into()]))]),
        ));
    }
    let out = service.search(&request).unwrap();
    assert_eq!(out.get("model").and_then(Json::as_str), Some("minimality"));
    let criterion = out.get("criterion").and_then(Json::as_str).unwrap();
    assert!(criterion.contains("minimality"), "criterion: {criterion}");

    // The conjunction search response stays model-free.
    let classic = service.search(&audit_request(None)).unwrap();
    assert!(classic.get("model").is_none());
}

/// Model-tagged releases flow through history and composition: the
/// sequential adversary's common-refinement bound is at least the
/// union-of-buckets bound over the same history.
#[test]
fn model_release_history_and_composition_flow() {
    let service = AuditService::new();
    let id = service
        .register_table(&register_request())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let release = |node: Vec<u64>, model: Option<&str>| {
        let mut fields = vec![(
            "node",
            Json::Array(node.into_iter().map(Json::from).collect()),
        )];
        if let Some(m) = model {
            fields.push(("model", m.into()));
        }
        Json::object(fields)
    };
    let tagged = service
        .session_release(&id, &release(vec![1, 0], Some("sequential")))
        .unwrap();
    assert_eq!(
        tagged.get("model").and_then(Json::as_str),
        Some("sequential")
    );
    let plain = service
        .session_release(&id, &release(vec![0, 1], None))
        .unwrap();
    assert!(plain.get("model").is_none());

    let history = service.table_history(&id).unwrap();
    let entries = history.get("history").and_then(Json::as_array).unwrap();
    assert_eq!(
        entries[0].get("model").and_then(Json::as_str),
        Some("sequential")
    );
    assert!(entries[1].get("model").is_none());

    let params = |model: Option<&str>| {
        let mut fields = vec![("k", Json::from(1u64)), ("c", 0.9.into())];
        if let Some(m) = model {
            fields.push(("model", m.into()));
        }
        Json::object(fields)
    };
    let union = service.session_composition(&id, &params(None)).unwrap();
    let refined = service
        .session_composition(&id, &params(Some("sequential")))
        .unwrap();
    assert_eq!(
        refined.get("model").and_then(Json::as_str),
        Some("sequential")
    );
    let vu = union.get("max_disclosure").and_then(Json::as_f64).unwrap();
    let vr = refined
        .get("max_disclosure")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        vr >= vu,
        "refinement ({vr}) must be at least as disclosive as union ({vu})"
    );
    // Repeat audits reuse the incremental state and stay identical.
    let again = service
        .session_composition(&id, &params(Some("sequential")))
        .unwrap();
    assert_eq!(again.to_string(), refined.to_string());
}

/// The full per-(model, op) matrix is pre-registered at zero and counts
/// requests as they happen.
#[test]
fn model_request_metrics_accumulate() {
    let service = AuditService::new();
    let metrics = wcbk_serve::metrics::ServeMetrics::new();
    let cold = metrics.render(&service);
    assert!(
        cold.contains("wcbk_model_requests_total{model=\"sequential\",op=\"composition\"} 0"),
        "cold scrape missing a matrix cell:\n{cold}"
    );
    service.audit(&audit_request(Some("distribution"))).unwrap();
    service.audit(&audit_request(None)).unwrap();
    let hot = metrics.render(&service);
    assert!(hot.contains("wcbk_model_requests_total{model=\"distribution\",op=\"audit\"} 1"));
    assert!(hot.contains("wcbk_model_requests_total{model=\"conjunction\",op=\"audit\"} 1"));
}

// ---- Durability: a non-conjunction history survives a restart. ----

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wcbk-models-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

type Running = (
    SocketAddr,
    wcbk_serve::ServerHandle,
    Arc<AuditService>,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start(config: ServerConfig) -> Running {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, service, join)
}

/// A sequential-model release history rehydrates under the model it was
/// audited with: history, model audit, and model composition answers are
/// byte-identical across a restart on the same data dir.
#[test]
fn model_releases_round_trip_through_restart_byte_equal() {
    let scratch = Scratch::new("restart");
    let config = || ServerConfig {
        data_dir: Some(scratch.0.clone()),
        ..ServerConfig::default()
    };
    let connect = |addr| Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");

    let (addr, handle, service, join) = start(config());
    let mut client = connect(addr);
    let reg = client
        .post("/tables", &register_request().to_string())
        .unwrap();
    assert_eq!(reg.status, 200, "register: {}", reg.body);
    let id = reg
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    for (node, model) in [("[1,0]", "sequential"), ("[0,1]", "distribution")] {
        let body = format!("{{\"node\": {node}, \"model\": \"{model}\"}}");
        let r = client
            .post(&format!("/tables/{id}/release"), &body)
            .unwrap();
        assert_eq!(r.status, 200, "release: {}", r.body);
    }
    let model_body = "{\"k\": 1, \"c\": 0.9, \"model\": \"sequential\"}";
    let audit_before = client
        .post(&format!("/tables/{id}/audit"), model_body)
        .unwrap();
    assert_eq!(audit_before.status, 200, "audit: {}", audit_before.body);
    let composition_before = client
        .post(&format!("/tables/{id}/composition"), model_body)
        .unwrap();
    assert_eq!(composition_before.status, 200);
    let history_before = client.get(&format!("/tables/{id}/history")).unwrap();
    assert!(history_before.body.contains("sequential"));
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
    drop(service);

    let (addr, handle, service, join) = start(config());
    let mut client = connect(addr);
    let history_after = client.get(&format!("/tables/{id}/history")).unwrap();
    assert_eq!(
        history_after.body, history_before.body,
        "model-tagged history drifted"
    );
    let audit_after = client
        .post(&format!("/tables/{id}/audit"), model_body)
        .unwrap();
    assert_eq!(
        audit_after.body, audit_before.body,
        "model audit drifted across restart"
    );
    let composition_after = client
        .post(&format!("/tables/{id}/composition"), model_body)
        .unwrap();
    assert_eq!(
        composition_after.body, composition_before.body,
        "model composition drifted across restart"
    );
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
    drop(service);
}
