//! Reactor-specific end-to-end tests: the behaviors the evented redesign
//! bought that a thread-per-connection server cannot show — stalled
//! clients reaped without pinning a worker, idle keep-alive reaping,
//! wire-streamed chunked uploads, partial-write continuation, and
//! connection-cap admission.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;
use wcbk_serve::service::AuditService;
use wcbk_serve::{Server, ServerConfig};

type ServerThread = std::thread::JoinHandle<std::io::Result<()>>;

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    wcbk_serve::ServerHandle,
    Arc<AuditService>,
    ServerThread,
) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, service, join)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect")
}

fn workload_csv(i: usize) -> String {
    let base = 20 + (i % 7) as u32;
    let mut csv = String::from("Age,Sex,Disease\n");
    for (j, (sex, disease)) in [
        ("M", "Flu"),
        ("F", "Flu"),
        ("M", "Cold"),
        ("F", "Cold"),
        ("M", "Flu"),
        ("F", "Cold"),
    ]
    .iter()
    .enumerate()
    {
        csv.push_str(&format!("{},{sex},{disease}\n", base + 2 * j as u32));
    }
    csv
}

fn audit_body(i: usize) -> String {
    Json::object(vec![
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
    ])
    .to_string()
}

fn server_stat(client: &mut Client, key: &str) -> u64 {
    let stats = client.get("/stats").unwrap().json().unwrap();
    stats
        .get("server")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("server stat {key:?} missing"))
}

/// The slowloris acceptance pin: with **one** worker and eight clients
/// trickling partial request headers, real requests still complete
/// promptly — stalled sockets live in the reactor, not on a worker — and
/// the reactor reaps every trickler at the `read_timeout` anchored to its
/// first byte. A thread-per-connection server with `workers: 1` would
/// serve nothing until the tricklers time out one by one.
#[test]
fn a_stalled_client_no_longer_pins_a_worker() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 1,
        max_connections: 64,
        read_timeout: Some(Duration::from_millis(800)),
        ..ServerConfig::default()
    });

    // Eight slowloris connections: a partial request line, then silence.
    let tricklers: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /audit HT").unwrap();
            s
        })
        .collect();

    // Real work completes promptly on the single worker.
    let mut client = connect(addr);
    let started = Instant::now();
    for i in 0..4 {
        let r = client.post("/audit", &audit_body(i)).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "audits stalled behind slowloris connections: {:?}",
        started.elapsed()
    );

    // Past the read deadline the tricklers are reaped — silently closed
    // and counted — without a worker ever seeing them.
    std::thread::sleep(Duration::from_millis(1200));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server_stat(&mut client, "reaped_slow") >= 8 {
            break;
        }
        assert!(Instant::now() < deadline, "tricklers were not reaped");
        std::thread::sleep(Duration::from_millis(100));
    }
    for mut s in tricklers {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "reap closes silently");
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Evented mode reaps idle keep-alive connections at `idle_timeout`, and
/// `/stats` counts them.
#[test]
fn idle_keep_alive_connections_are_reaped() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        max_connections: 16,
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });

    let mut idler = connect(addr);
    assert_eq!(idler.get("/healthz").unwrap().status, 200);
    std::thread::sleep(Duration::from_millis(900));

    let mut client = connect(addr);
    assert!(server_stat(&mut client, "reaped_idle") >= 1);
    // The idler's connection is gone: the next request cannot round-trip.
    assert!(idler.get("/healthz").is_err());

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Sends a `Transfer-Encoding: chunked` CSV upload, split into `n` wire
/// chunks, and returns the response.
fn chunked_upload(addr: SocketAddr, target: &str, csv: &str, n: usize) -> (u16, Json) {
    let mut client = connect(addr);
    let head = format!(
        "POST {target} HTTP/1.1\r\nHost: wcbk\r\nContent-Type: text/csv\r\nTransfer-Encoding: chunked\r\n\r\n"
    );
    client.send_raw(head.as_bytes()).unwrap();
    let bytes = csv.as_bytes();
    let step = bytes.len().div_ceil(n).max(1);
    for piece in bytes.chunks(step) {
        let mut frame = format!("{:x}\r\n", piece.len()).into_bytes();
        frame.extend_from_slice(piece);
        frame.extend_from_slice(b"\r\n");
        if client.send_raw(&frame).is_err() {
            // The server already rejected mid-stream (413) and closed its
            // read half; the response is waiting for us below.
            break;
        }
        // A flush per chunk so the server sees genuinely incremental
        // arrivals, not one coalesced buffer.
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = client.send_raw(b"0\r\n\r\n");
    let response = client.read_response().unwrap();
    let json = response.json().unwrap();
    (response.status, json)
}

/// The wire-chunked acceptance pin: a chunked `text/csv` upload (params in
/// the query string) registers the **same content-fingerprint handle** as
/// the buffered JSON-body registration of the same data — the streamed
/// decode is bit-identical — and the handle serves audits.
#[test]
fn chunked_upload_matches_buffered_registration() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let mut client = connect(addr);
    let body = Json::object(vec![
        ("csv", workload_csv(3).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
    ])
    .to_string();
    let buffered = client.post("/tables", &body).unwrap();
    assert_eq!(buffered.status, 200, "{}", buffered.body);
    let buffered = buffered.json().unwrap();
    let id = buffered
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    assert_eq!(buffered.get("created").and_then(Json::as_bool), Some(true));

    // The same data as a chunked wire upload, split into 13 tiny chunks:
    // same fingerprint, so the existing handle is returned un-rebuilt.
    let (status, registered) = chunked_upload(
        addr,
        "/tables?sensitive=Disease&qi=Age,Sex",
        &workload_csv(3),
        13,
    );
    assert_eq!(status, 200, "{registered}");
    assert_eq!(
        registered.get("id").and_then(Json::as_str),
        Some(id.as_str())
    );
    assert_eq!(
        registered.get("created").and_then(Json::as_bool),
        Some(false)
    );

    // And a fresh table registered *only* via the wire path works end to
    // end: the handle answers audits.
    let (status, fresh) = chunked_upload(
        addr,
        "/tables?sensitive=Disease&qi=Age,Sex",
        &workload_csv(4),
        7,
    );
    assert_eq!(status, 200, "{fresh}");
    let fresh_id = fresh.get("id").and_then(Json::as_str).unwrap().to_owned();
    let audit = client
        .post(
            &format!("/tables/{fresh_id}/audit"),
            &Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]).to_string(),
        )
        .unwrap();
    assert_eq!(audit.status, 200, "{}", audit.body);

    // Unknown query parameters are a clean 400, not a mis-registration.
    let (status, err) = chunked_upload(addr, "/tables?sensitve=Disease", "A,B\n1,2\n", 1);
    assert_eq!(status, 400);
    assert!(err
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("sensitve"));

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A chunked upload whose cumulative decoded size exceeds `max_body` is
/// rejected 413 mid-stream — the declared-length check cannot see chunked
/// bodies, so the parser enforces the cap as bytes decode.
#[test]
fn oversized_chunked_upload_is_rejected() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 1,
        max_body: 4096,
        ..ServerConfig::default()
    });

    let mut csv = String::from("Age,Sex,Disease\n");
    while csv.len() <= 16 * 1024 {
        csv.push_str("21,M,Flu\n");
    }
    let (status, err) = chunked_upload(addr, "/tables?sensitive=Disease", &csv, 9);
    assert_eq!(status, 413, "{err}");
    assert!(err
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds"));

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Shrinks a socket's kernel receive buffer so the server hits
/// `WouldBlock` mid-response (Linux-only knob; the test is gated to match).
#[cfg(target_os = "linux")]
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let size: i32 = 1024;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            std::ptr::addr_of!(size).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

/// Partial-write continuation: a client with a tiny receive buffer that
/// reads slowly forces the server's socket writes to return `WouldBlock`
/// repeatedly; the reactor must resume on write-readiness until the whole
/// streamed NDJSON response — every line plus the summary — arrives intact.
#[cfg(target_os = "linux")]
#[test]
fn partial_writes_resume_until_the_response_completes() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let stream = TcpStream::connect(addr).unwrap();
    shrink_rcvbuf(&stream);
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut stream = stream;

    const TABLES: usize = 24;
    let jobs: Vec<Json> = (0..TABLES)
        .map(|i| {
            Json::object(vec![
                ("op", "audit".into()),
                ("csv", workload_csv(i).into()),
                ("sensitive", "Disease".into()),
                ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
                ("k", 1u64.into()),
                ("c", 0.9.into()),
            ])
        })
        .collect();
    let body = Json::object(vec![("tables", Json::Array(jobs))]).to_string();
    let request = format!(
        "POST /batch HTTP/1.1\r\nHost: wcbk\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();

    // Read a trickle at a time so the kernel window stays mostly full and
    // the server keeps getting partial writes.
    let mut raw = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("read: {e}"),
        }
    }
    let text = String::from_utf8(raw).unwrap();
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    // De-chunk crudely: NDJSON lines are exactly the lines starting '{'.
    let lines: Vec<Json> = text
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(lines.len(), TABLES + 1, "{text}");
    let summary = lines.last().unwrap();
    assert_eq!(summary.get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(
        summary.get("tables").and_then(Json::as_u64),
        Some(TABLES as u64)
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Evented admission: past `max_connections` open sockets, new connections
/// get the immediate 503 (counted in `/stats`), and capacity frees as
/// connections close.
#[test]
fn connections_past_the_cap_are_rejected_at_accept() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        max_connections: 2,
        ..ServerConfig::default()
    });

    let mut a = connect(addr);
    let mut b = connect(addr);
    assert_eq!(a.get("/healthz").unwrap().status, 200);
    assert_eq!(b.get("/healthz").unwrap().status, 200);

    // Both slots held open by keep-alive: the third connection is rejected
    // at accept without touching a worker.
    let mut c = connect(addr);
    let r = c.read_response().unwrap();
    assert_eq!(r.status, 503);
    assert_eq!(
        r.json().unwrap().get("error").and_then(Json::as_str),
        Some("server is at capacity")
    );

    // Freeing a slot restores admission.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut d = connect(addr);
        match d.get("/healthz") {
            Ok(r) if r.status == 200 => break,
            _ => assert!(Instant::now() < deadline, "slot never freed"),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(server_stat(&mut b, "rejected_503") >= 1);
    assert_eq!(server_stat(&mut b, "max_connections"), 2);
    assert!(server_stat(&mut b, "peak_connections") >= 2);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Graceful shutdown closes idle keep-alive connections immediately — the
/// old implementation had no way to interrupt a worker parked in a
/// blocking read, so it swept read-halves; the reactor just stops polling
/// them.
#[test]
fn shutdown_closes_idle_connections_promptly() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        max_connections: 8,
        ..ServerConfig::default()
    });

    let mut idler = connect(addr);
    assert_eq!(idler.get("/healthz").unwrap().status, 200);

    let started = Instant::now();
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown waited on an idle connection: {:?}",
        started.elapsed()
    );
    assert!(idler.get("/healthz").is_err(), "idler should be closed");
}
