//! End-to-end durability tests: a server with `--data-dir` must resume
//! serving every acknowledged handle after a restart — metadata, audits,
//! release history, and composition verdicts **bit-identical** to the
//! pre-restart responses — while still doing exactly one table scan per
//! handle per process. Eviction becomes reload (not 404), and `DELETE`
//! becomes durable.

use std::fs;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;
use wcbk_serve::service::AuditService;
use wcbk_serve::{Server, ServerConfig, ServiceLimits};

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wcbk-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

type Running = (
    SocketAddr,
    wcbk_serve::ServerHandle,
    Arc<AuditService>,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start(config: ServerConfig) -> Running {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, service, join)
}

fn durable_config(dir: &Scratch) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.0.clone()),
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect")
}

fn register_body() -> String {
    let csv = "Age,Sex,Disease\n\
               21,M,Flu\n22,F,Flu\n23,M,Cold\n24,F,Cold\n\
               31,M,Flu\n32,F,Cold\n33,M,Cold\n34,F,Flu\n";
    Json::object(vec![
        ("csv", csv.into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        (
            "hierarchy",
            Json::object(vec![("Age", Json::Array(vec![10u64.into()]))]),
        ),
    ])
    .to_string()
}

fn audit_body() -> String {
    Json::object(vec![("k", 2u64.into()), ("c", 0.9.into())]).to_string()
}

fn release(client: &mut Client, id: &str, node: &[u64]) -> Json {
    let body = Json::object(vec![(
        "node",
        Json::Array(node.iter().map(|&l| l.into()).collect()),
    )]);
    let response = client
        .post(&format!("/tables/{id}/release"), &body.to_string())
        .unwrap();
    assert_eq!(response.status, 200, "release: {}", response.body);
    response.json().unwrap()
}

fn table_scans(client: &mut Client, id: &str) -> u64 {
    let info = client
        .get(&format!("/tables/{id}"))
        .unwrap()
        .json()
        .unwrap();
    info.get("rollup")
        .and_then(|r| r.get("table_scans"))
        .and_then(Json::as_u64)
        .expect("rollup.table_scans")
}

/// The tentpole acceptance pin: register + release against a durable
/// server, restart it on the same data dir, and get byte-identical
/// metadata, audit, history, and composition answers for the old handle —
/// with exactly one table scan in the new process.
#[test]
fn restart_resumes_handles_with_bit_identical_answers() {
    let scratch = Scratch::new("restart");

    // ---- First server life: register, audit, release twice, compose.
    let (addr, handle, service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    let reg = client.post("/tables", &register_body()).unwrap();
    assert_eq!(reg.status, 200, "register: {}", reg.body);
    let reg = reg.json().unwrap();
    assert_eq!(reg.get("created").and_then(Json::as_bool), Some(true));
    let id = reg.get("id").and_then(Json::as_str).unwrap().to_owned();

    release(&mut client, &id, &[0, 0]);
    release(&mut client, &id, &[1, 1]);
    let audit_before = client
        .post(&format!("/tables/{id}/audit"), &audit_body())
        .unwrap();
    assert_eq!(audit_before.status, 200);
    let composition_before = client
        .post(&format!("/tables/{id}/composition"), &audit_body())
        .unwrap();
    assert_eq!(composition_before.status, 200);
    let history_before = client.get(&format!("/tables/{id}/history")).unwrap();
    assert_eq!(history_before.status, 200);
    let info_before = client.get(&format!("/tables/{id}")).unwrap();
    assert_eq!(table_scans(&mut client, &id), 1);
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
    drop(service);

    // ---- Second life, same directory: the handle must still answer.
    let (addr, handle, service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    let info_after = client.get(&format!("/tables/{id}")).unwrap();
    assert_eq!(info_after.status, 200, "rehydrate: {}", info_after.body);
    assert_eq!(info_after.body, info_before.body, "table info drifted");
    let history_after = client.get(&format!("/tables/{id}/history")).unwrap();
    assert_eq!(history_after.body, history_before.body, "history drifted");
    let audit_after = client
        .post(&format!("/tables/{id}/audit"), &audit_body())
        .unwrap();
    assert_eq!(audit_after.body, audit_before.body, "audit verdict drifted");
    let composition_after = client
        .post(&format!("/tables/{id}/composition"), &audit_body())
        .unwrap();
    assert_eq!(
        composition_after.body, composition_before.body,
        "composition verdict drifted"
    );
    // Scan-free-after-registration holds per process: rehydration did one
    // scan, and every answer above reused it.
    assert_eq!(table_scans(&mut client, &id), 1);

    // The handle was rehydrated, not re-registered.
    let stats = client.get("/stats").unwrap().json().unwrap();
    let sessions = stats.get("sessions").unwrap();
    assert_eq!(
        sessions.get("rehydrated").and_then(Json::as_u64),
        Some(1),
        "expected one rehydration"
    );
    assert_eq!(sessions.get("registered").and_then(Json::as_u64), Some(0));
    // And the store section reports the durable state.
    let store = stats.get("store").expect("store stats section");
    assert_eq!(store.get("datasets").and_then(Json::as_u64), Some(1));
    assert_eq!(store.get("releases").and_then(Json::as_u64), Some(2));

    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
    drop(service);
}

/// Re-registering identical content after a restart dedups onto the
/// rehydrated handle: same id, `created: false`, and the durable release
/// history is already attached to the session it returns.
#[test]
fn reregistration_after_restart_dedups_onto_rehydrated_state() {
    let scratch = Scratch::new("rereg");
    let (addr, handle, _service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    let reg = client
        .post("/tables", &register_body())
        .unwrap()
        .json()
        .unwrap();
    let id = reg.get("id").and_then(Json::as_str).unwrap().to_owned();
    release(&mut client, &id, &[1, 0]);
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();

    let (addr, handle, _service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    // POST the same content again on the fresh process: the *registration
    // path* touches memory first, so this must not fabricate a blank
    // session that shadows the durable history.
    let reg2 = client
        .post("/tables", &register_body())
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(reg2.get("id").and_then(Json::as_str), Some(id.as_str()));
    let info = client
        .get(&format!("/tables/{id}"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        info.get("releases").and_then(Json::as_u64),
        Some(1),
        "durable release history lost to re-registration"
    );
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Under a session budget, eviction no longer strands a durable handle:
/// the next touch reloads it from the catalog instead of 404ing.
#[test]
fn evicted_handle_reloads_from_catalog() {
    let scratch = Scratch::new("evict");
    let config = ServerConfig {
        limits: ServiceLimits {
            session_budget: Some(1),
            ..ServiceLimits::default()
        },
        ..durable_config(&scratch)
    };
    let (addr, handle, service, join) = start(config);
    let mut client = connect(addr);
    let reg = client
        .post("/tables", &register_body())
        .unwrap()
        .json()
        .unwrap();
    let id_a = reg.get("id").and_then(Json::as_str).unwrap().to_owned();
    release(&mut client, &id_a, &[1, 1]);

    // A second, different dataset pushes the first out of the budget.
    let other = Json::object(vec![
        ("csv", "Age,Disease\n41,Flu\n42,Cold\n43,Flu\n".into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into()])),
    ])
    .to_string();
    let reg_b = client.post("/tables", &other).unwrap().json().unwrap();
    assert_ne!(reg_b.get("id").and_then(Json::as_str), Some(id_a.as_str()));

    // The evicted handle still answers — reloaded from disk, history intact.
    let info = client.get(&format!("/tables/{id_a}")).unwrap();
    assert_eq!(info.status, 200, "evicted handle 404ed: {}", info.body);
    let info = info.json().unwrap();
    assert_eq!(info.get("releases").and_then(Json::as_u64), Some(1));
    assert!(service.stats().iter().any(|(k, _)| *k == "store"));
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `DELETE /tables/{id}` is the true deletion: unlike an eviction it
/// removes the catalog entry, so the handle stays gone across a restart.
#[test]
fn delete_is_durable_across_restart() {
    let scratch = Scratch::new("delete");
    let (addr, handle, _service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    let reg = client
        .post("/tables", &register_body())
        .unwrap()
        .json()
        .unwrap();
    let id = reg.get("id").and_then(Json::as_str).unwrap().to_owned();
    client
        .send_raw(format!("DELETE /tables/{id} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let drop_response = client.read_response().unwrap();
    assert_eq!(drop_response.status, 200);
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();

    let (addr, handle, _service, join) = start(durable_config(&scratch));
    let mut client = connect(addr);
    let info = client.get(&format!("/tables/{id}")).unwrap();
    assert_eq!(
        info.status, 404,
        "deleted handle resurrected: {}",
        info.body
    );
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Without `--data-dir` nothing changes: no store stats section, restarts
/// forget handles — the classic in-memory contract, pinned.
#[test]
fn memory_only_server_stays_memory_only() {
    let (addr, handle, service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let reg = client
        .post("/tables", &register_body())
        .unwrap()
        .json()
        .unwrap();
    let id = reg.get("id").and_then(Json::as_str).unwrap().to_owned();
    let stats = client.get("/stats").unwrap().json().unwrap();
    assert!(
        stats.get("store").is_none(),
        "store stats without --data-dir"
    );
    assert!(service.store().is_none());
    // DELETE on a memory-only server still works (both tiers report false
    // only when the handle exists in neither).
    client
        .send_raw(format!("DELETE /tables/{id} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    assert_eq!(client.read_response().unwrap().status, 200);
    drop(client);
    handle.shutdown();
    join.join().unwrap().unwrap();
}
