//! End-to-end tests over the real TCP surface: concurrency, backpressure,
//! graceful shutdown, malformed traffic, and — the acceptance pin — batch
//! verdicts bit-identical to the CLI `audit`/`search` code paths.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use wcbk_anonymize::{find_minimal_safe_with, CkSafetyCriterion, Schedule, SearchConfig};
use wcbk_core::{is_ck_safe, Bucketization, DisclosureEngine};
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy};
use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;
use wcbk_serve::service::AuditService;
use wcbk_serve::{Server, ServerConfig};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

type ServerThread = std::thread::JoinHandle<std::io::Result<()>>;

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    wcbk_serve::ServerHandle,
    Arc<AuditService>,
    ServerThread,
) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, service, join)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect")
}

/// Table `i` of the test workload: six rows whose ages shift with `i`, so
/// tables are distinct but share histogram shapes (the cross-request cache
/// hit case).
fn workload_csv(i: usize) -> String {
    let base = 20 + (i % 7) as u32;
    let mut csv = String::from("Age,Sex,Disease\n");
    for (j, (sex, disease)) in [
        ("M", "Flu"),
        ("F", "Flu"),
        ("M", "Cold"),
        ("F", "Cold"),
        ("M", "Flu"),
        ("F", "Cold"),
    ]
    .iter()
    .enumerate()
    {
        csv.push_str(&format!("{},{sex},{disease}\n", base + 2 * j as u32));
    }
    csv
}

/// Builds table `i` the way the CLI's `load()` does (same schema roles).
fn workload_table(i: usize) -> Table {
    let csv = workload_csv(i);
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let attributes: Vec<Attribute> = header
        .iter()
        .map(|n| {
            let kind = if *n == "Disease" {
                AttributeKind::Sensitive
            } else {
                AttributeKind::QuasiIdentifier
            };
            Attribute::new((*n).to_owned(), kind)
        })
        .collect();
    let mut builder = TableBuilder::new(Schema::new(attributes).unwrap());
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        builder.push_row(&fields).unwrap();
    }
    builder.build()
}

fn audit_job(i: usize) -> Json {
    Json::object(vec![
        ("op", "audit".into()),
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
    ])
}

fn search_job(i: usize) -> Json {
    // k = 0 so safe generalizations exist (two sensitive values disclose
    // fully under any implication) and minimal-node comparison is
    // non-trivial.
    Json::object(vec![
        ("op", "search".into()),
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 0u64.into()),
        ("c", 0.9.into()),
        ("threads", 2u64.into()),
        ("schedule", "steal".into()),
    ])
}

/// The CLI `audit` computation for table `i`: exact-QI bucketization,
/// engine disclosure, (c,k) verdict.
fn expected_audit(i: usize) -> (f64, bool) {
    let table = workload_table(i);
    let qi_cols = [0usize, 1];
    let b = Bucketization::from_grouping(&table, |t| {
        qi_cols
            .iter()
            .map(|&col| table.column(col).code(t.index()))
            .collect::<Vec<u32>>()
    })
    .unwrap();
    let engine = DisclosureEngine::new(1);
    let value = engine.max_disclosure(&b).unwrap().value;
    let safe = is_ck_safe(&b, 0.9, 1).unwrap();
    (value, safe)
}

/// The CLI `search` computation for table `i`: suppression hierarchies on
/// the quasi-identifiers, (c,k)-safety, work stealing at 2 threads.
fn expected_search(i: usize) -> (Vec<Vec<usize>>, usize, usize) {
    let table = workload_table(i);
    let age = table.column(0).dictionary().clone();
    let sex = table.column(1).dictionary().clone();
    let lattice = GeneralizationLattice::new(vec![
        (0, Hierarchy::suppression("Age", &age)),
        (1, Hierarchy::suppression("Sex", &sex)),
    ])
    .unwrap();
    let criterion = CkSafetyCriterion::new(0.9, 0).unwrap();
    let config = SearchConfig {
        threads: 2,
        schedule: Schedule::WorkStealing,
        memo_capacity: None,
    };
    let outcome = find_minimal_safe_with(&table, &lattice, &criterion, &config).unwrap();
    assert!(
        !outcome.minimal_nodes.is_empty(),
        "workload should admit a safe generalization at k = 0"
    );
    (
        outcome.minimal_nodes.iter().map(|n| n.0.clone()).collect(),
        outcome.evaluated,
        outcome.satisfied,
    )
}

#[test]
fn healthz_and_stats_respond() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health = health.json().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("shutting_down").and_then(Json::as_bool),
        Some(false)
    );

    let stats = client.get("/stats").unwrap().json().unwrap();
    assert!(stats.get("engine_cache").is_some(), "{stats}");
    assert!(stats.get("rollup").is_some());
    assert!(stats.get("server").unwrap().get("workers").is_some());

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The acceptance pin: a 32-table `/batch` from 8 concurrent connections
/// produces verdicts bit-identical to the CLI `audit`/`search` paths, and
/// `/stats` afterwards shows cross-request engine cache hits.
#[test]
fn concurrent_batches_match_cli_paths_bit_for_bit() {
    const TABLES: usize = 32;
    const CLIENTS: usize = 8;
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 4,
        queue_depth: 32,
        ..ServerConfig::default()
    });

    let jobs: Vec<Json> = (0..TABLES)
        .map(|i| {
            if i % 2 == 0 {
                audit_job(i)
            } else {
                search_job(i)
            }
        })
        .collect();
    let batch = Json::object(vec![("tables", Json::Array(jobs))]).to_string();

    let mut all_lines: Vec<Vec<Json>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let batch = &batch;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    let response = client.post("/batch", batch).unwrap();
                    assert_eq!(response.status, 200);
                    response.ndjson().unwrap()
                })
            })
            .collect();
        for h in handles {
            all_lines.push(h.join().unwrap());
        }
    });

    for lines in &all_lines {
        // TABLES result lines plus the summary line.
        assert_eq!(lines.len(), TABLES + 1, "{lines:?}");
        let summary = lines.last().unwrap();
        assert_eq!(summary.get("done").and_then(Json::as_bool), Some(true));
        assert_eq!(
            summary.get("tables").and_then(Json::as_u64),
            Some(TABLES as u64)
        );
        // Every index exactly once; every result matching the CLI path.
        let mut seen = [false; TABLES];
        for line in &lines[..TABLES] {
            let i = line.get("index").and_then(Json::as_u64).unwrap() as usize;
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert!(line.get("error").is_none(), "table {i}: {line}");
            if i % 2 == 0 {
                let (value, safe) = expected_audit(i);
                assert_eq!(
                    line.get("max_disclosure")
                        .and_then(Json::as_f64)
                        .unwrap()
                        .to_bits(),
                    value.to_bits(),
                    "table {i} disclosure diverged from the CLI path"
                );
                assert_eq!(line.get("safe").and_then(Json::as_bool), Some(safe));
            } else {
                let (minimal, evaluated, satisfied) = expected_search(i);
                let got: Vec<Vec<usize>> = line
                    .get("minimal")
                    .and_then(Json::as_array)
                    .unwrap()
                    .iter()
                    .map(|node| {
                        node.as_array()
                            .unwrap()
                            .iter()
                            .map(|l| l.as_u64().unwrap() as usize)
                            .collect()
                    })
                    .collect();
                assert_eq!(got, minimal, "table {i} minimal nodes diverged");
                assert_eq!(
                    line.get("evaluated").and_then(Json::as_u64),
                    Some(evaluated as u64)
                );
                assert_eq!(
                    line.get("satisfied").and_then(Json::as_u64),
                    Some(satisfied as u64)
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "missing indices");
    }

    // Cross-request cache effectiveness is observable, not hypothetical.
    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let hits = stats
        .get("engine_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits > 0, "no cross-request engine cache hits: {stats}");
    let batch_tables = stats
        .get("service")
        .and_then(|s| s.get("batch_tables"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(batch_tables, (TABLES * CLIENTS) as u64);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn search_honors_schedule_threads_and_memo_cap() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let request = Json::object(vec![
        ("csv", workload_csv(0).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        (
            "hierarchy",
            Json::object(vec![("Age", Json::Array(vec![2u64.into(), 4u64.into()]))]),
        ),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
        ("threads", 2u64.into()),
        ("schedule", "level".into()),
        ("memo_cap", 1u64.into()),
    ]);
    let out = client.post("/search", &request.to_string()).unwrap();
    assert_eq!(out.status, 200);
    let out = out.json().unwrap();

    // Library computation under the identical config.
    let table = workload_table(0);
    let age = table.column(0).dictionary().clone();
    let sex = table.column(1).dictionary().clone();
    let lattice = GeneralizationLattice::new(vec![
        (0, Hierarchy::intervals("Age", &age, &[2, 4]).unwrap()),
        (1, Hierarchy::suppression("Sex", &sex)),
    ])
    .unwrap();
    let outcome = find_minimal_safe_with(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.9, 1).unwrap(),
        &SearchConfig {
            threads: 2,
            schedule: Schedule::LevelSync,
            memo_capacity: Some(1),
        },
    )
    .unwrap();
    assert_eq!(
        out.get("evaluated").and_then(Json::as_u64),
        Some(outcome.evaluated as u64)
    );
    assert_eq!(
        out.get("minimal").and_then(Json::as_array).unwrap().len(),
        outcome.minimal_nodes.len()
    );
    // The memo budget reached the evaluator: at most 1 group retained.
    let memo_groups = out
        .get("rollup")
        .and_then(|r| r.get("memo_groups"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(memo_groups <= 1, "{out}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_4xx() {
    let (addr, handle, _service, join) = start(ServerConfig {
        max_body: 4096,
        ..ServerConfig::default()
    });

    // Garbage instead of a request line.
    let mut raw = connect(addr);
    raw.send_raw(b"EXPLODE\r\n\r\n").unwrap();
    assert_eq!(raw.read_response().unwrap().status, 400);

    // Bad JSON body.
    let mut client = connect(addr);
    let r = client.post("/audit", "{not json").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.json().unwrap().get("error").is_some());

    // Valid JSON, invalid request (missing sensitive).
    let r = client
        .post("/audit", "{\"csv\": \"A,B\\n1,2\\n\"}")
        .unwrap();
    assert_eq!(r.status, 400);

    // Batch with a non-array tables field.
    let r = client.post("/batch", "{\"tables\": 7}").unwrap();
    assert_eq!(r.status, 400);

    // Unknown endpoint and disallowed method.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    let mut raw = connect(addr);
    raw.send_raw(b"DELETE /audit HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(raw.read_response().unwrap().status, 405);

    // Oversized declared body.
    let mut raw = connect(addr);
    raw.send_raw(b"POST /audit HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
        .unwrap();
    assert_eq!(raw.read_response().unwrap().status, 413);

    // The service kept count.
    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let bad = stats
        .get("service")
        .and_then(|s| s.get("bad_requests"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(bad >= 5, "{stats}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// One worker, one queue slot: a stalled connection occupies the worker, a
/// second waits in the queue, and a third is rejected with 503 immediately.
/// Once the stall clears, both held connections are served.
#[test]
fn queue_full_gets_503_and_recovers() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    });

    // A: completes one request. Reading the response proves the lone
    // worker is now dedicated to A's keep-alive connection (parked in its
    // next blocking read) — held deterministically, no sleeps.
    let mut holder = connect(addr);
    assert_eq!(holder.get("/healthz").unwrap().status, 200);

    // B: accepted into the queue (the worker is busy with A) → queue full.
    // `Connection: close` so the worker moves on after eventually serving
    // it.
    let mut queued = connect(addr);
    queued
        .send_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();

    // C: connects after B's connect returned, so the single accept loop
    // enqueues B (filling the queue) before it reaches C → immediate 503.
    let mut rejected = connect(addr);
    let r = rejected.read_response().unwrap();
    assert_eq!(r.status, 503);
    assert!(r.json().unwrap().get("error").is_some());

    // A's next request asks to close, releasing the worker to drain B.
    holder
        .send_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(holder.read_response().unwrap().status, 200);
    assert_eq!(queued.read_response().unwrap().status, 200);

    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let rejected_count = stats
        .get("server")
        .and_then(|s| s.get("rejected_503"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(rejected_count >= 1, "{stats}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Shutdown during a streaming batch: the batch runs to completion (every
/// line plus the summary arrives), then the server exits and the port
/// closes.
#[test]
fn graceful_shutdown_mid_batch() {
    const TABLES: usize = 24;
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let jobs: Vec<Json> = (0..TABLES).map(search_job).collect();
    let batch = Json::object(vec![("tables", Json::Array(jobs))]).to_string();

    let mut client = connect(addr);
    let response = std::thread::scope(|scope| {
        let batch_client = scope.spawn(move || {
            let r = client.post("/batch", &batch).unwrap();
            (r.status, r.ndjson().unwrap())
        });
        // Trigger shutdown while the batch is (very likely) still running;
        // correctness does not depend on the overlap, only the assertions
        // below do not.
        let mut killer = connect(addr);
        let r = killer.post("/shutdown", "{}").unwrap();
        assert_eq!(r.status, 200);
        batch_client.join().unwrap()
    });
    let (status, lines) = response;
    assert_eq!(status, 200);
    assert_eq!(lines.len(), TABLES + 1, "batch truncated by shutdown");
    assert_eq!(
        lines.last().unwrap().get("done").and_then(Json::as_bool),
        Some(true)
    );
    for line in &lines[..TABLES] {
        assert!(line.get("error").is_none(), "{line}");
    }

    assert!(handle.is_shutting_down());
    join.join().unwrap().unwrap();
    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "port still open");
}

/// Keep-alive reuse: many requests over one connection, mixed endpoints.
#[test]
fn persistent_connections_serve_sequential_requests() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    for i in 0..5 {
        let r = client.post("/audit", &audit_job(i).to_string()).unwrap();
        assert_eq!(r.status, 200, "request {i}");
        let body = r.json().unwrap();
        let (value, safe) = expected_audit(i);
        assert_eq!(
            body.get("max_disclosure")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            value.to_bits()
        );
        assert_eq!(body.get("safe").and_then(Json::as_bool), Some(safe));
    }
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
    join.join().unwrap().unwrap();
}
