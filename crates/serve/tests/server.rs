//! End-to-end tests over the real TCP surface: concurrency, backpressure,
//! graceful shutdown, malformed traffic, and — the acceptance pin — batch
//! verdicts bit-identical to the CLI `audit`/`search` code paths.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use wcbk_anonymize::{find_minimal_safe_with, CkSafetyCriterion, Schedule, SearchConfig};
use wcbk_core::{is_ck_safe, Bucketization, DisclosureEngine};
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy};
use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;
use wcbk_serve::service::AuditService;
use wcbk_serve::{Server, ServerConfig};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

type ServerThread = std::thread::JoinHandle<std::io::Result<()>>;

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    wcbk_serve::ServerHandle,
    Arc<AuditService>,
    ServerThread,
) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, service, join)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect")
}

/// Table `i` of the test workload: six rows whose ages shift with `i`, so
/// tables are distinct but share histogram shapes (the cross-request cache
/// hit case).
fn workload_csv(i: usize) -> String {
    let base = 20 + (i % 7) as u32;
    let mut csv = String::from("Age,Sex,Disease\n");
    for (j, (sex, disease)) in [
        ("M", "Flu"),
        ("F", "Flu"),
        ("M", "Cold"),
        ("F", "Cold"),
        ("M", "Flu"),
        ("F", "Cold"),
    ]
    .iter()
    .enumerate()
    {
        csv.push_str(&format!("{},{sex},{disease}\n", base + 2 * j as u32));
    }
    csv
}

/// Builds table `i` the way the CLI's `load()` does (same schema roles).
fn workload_table(i: usize) -> Table {
    let csv = workload_csv(i);
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let attributes: Vec<Attribute> = header
        .iter()
        .map(|n| {
            let kind = if *n == "Disease" {
                AttributeKind::Sensitive
            } else {
                AttributeKind::QuasiIdentifier
            };
            Attribute::new((*n).to_owned(), kind)
        })
        .collect();
    let mut builder = TableBuilder::new(Schema::new(attributes).unwrap());
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        builder.push_row(&fields).unwrap();
    }
    builder.build()
}

fn audit_job(i: usize) -> Json {
    Json::object(vec![
        ("op", "audit".into()),
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
    ])
}

fn search_job(i: usize) -> Json {
    // k = 0 so safe generalizations exist (two sensitive values disclose
    // fully under any implication) and minimal-node comparison is
    // non-trivial.
    Json::object(vec![
        ("op", "search".into()),
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        ("k", 0u64.into()),
        ("c", 0.9.into()),
        ("threads", 2u64.into()),
        ("schedule", "steal".into()),
    ])
}

/// The CLI `audit` computation for table `i`: exact-QI bucketization,
/// engine disclosure, (c,k) verdict.
fn expected_audit(i: usize) -> (f64, bool) {
    let table = workload_table(i);
    let qi_cols = [0usize, 1];
    let b = Bucketization::from_grouping(&table, |t| {
        qi_cols
            .iter()
            .map(|&col| table.column(col).code(t.index()))
            .collect::<Vec<u32>>()
    })
    .unwrap();
    let engine = DisclosureEngine::new(1);
    let value = engine.max_disclosure(&b).unwrap().value;
    let safe = is_ck_safe(&b, 0.9, 1).unwrap();
    (value, safe)
}

/// The CLI `search` computation for table `i`: suppression hierarchies on
/// the quasi-identifiers, (c,k)-safety, work stealing at 2 threads.
fn expected_search(i: usize) -> (Vec<Vec<usize>>, usize, usize) {
    let table = workload_table(i);
    let age = table.column(0).dictionary().clone();
    let sex = table.column(1).dictionary().clone();
    let lattice = GeneralizationLattice::new(vec![
        (0, Hierarchy::suppression("Age", &age)),
        (1, Hierarchy::suppression("Sex", &sex)),
    ])
    .unwrap();
    let criterion = CkSafetyCriterion::new(0.9, 0).unwrap();
    let config = SearchConfig {
        threads: 2,
        schedule: Schedule::WorkStealing,
        ..Default::default()
    };
    let outcome = find_minimal_safe_with(&table, &lattice, &criterion, &config).unwrap();
    assert!(
        !outcome.minimal_nodes.is_empty(),
        "workload should admit a safe generalization at k = 0"
    );
    (
        outcome.minimal_nodes.iter().map(|n| n.0.clone()).collect(),
        outcome.evaluated,
        outcome.satisfied,
    )
}

#[test]
fn healthz_and_stats_respond() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health = health.json().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("shutting_down").and_then(Json::as_bool),
        Some(false)
    );

    let stats = client.get("/stats").unwrap().json().unwrap();
    assert!(stats.get("engine_cache").is_some(), "{stats}");
    assert!(stats.get("rollup").is_some());
    assert!(stats.get("server").unwrap().get("workers").is_some());

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The acceptance pin: a 32-table `/batch` from 8 concurrent connections
/// produces verdicts bit-identical to the CLI `audit`/`search` paths, and
/// `/stats` afterwards shows cross-request engine cache hits.
#[test]
fn concurrent_batches_match_cli_paths_bit_for_bit() {
    const TABLES: usize = 32;
    const CLIENTS: usize = 8;
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 4,
        queue_depth: 32,
        ..ServerConfig::default()
    });

    let jobs: Vec<Json> = (0..TABLES)
        .map(|i| {
            if i % 2 == 0 {
                audit_job(i)
            } else {
                search_job(i)
            }
        })
        .collect();
    let batch = Json::object(vec![("tables", Json::Array(jobs))]).to_string();

    let mut all_lines: Vec<Vec<Json>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let batch = &batch;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    let response = client.post("/batch", batch).unwrap();
                    assert_eq!(response.status, 200);
                    response.ndjson().unwrap()
                })
            })
            .collect();
        for h in handles {
            all_lines.push(h.join().unwrap());
        }
    });

    for lines in &all_lines {
        // TABLES result lines plus the summary line.
        assert_eq!(lines.len(), TABLES + 1, "{lines:?}");
        let summary = lines.last().unwrap();
        assert_eq!(summary.get("done").and_then(Json::as_bool), Some(true));
        assert_eq!(
            summary.get("tables").and_then(Json::as_u64),
            Some(TABLES as u64)
        );
        // Every index exactly once; every result matching the CLI path.
        let mut seen = [false; TABLES];
        for line in &lines[..TABLES] {
            let i = line.get("index").and_then(Json::as_u64).unwrap() as usize;
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert!(line.get("error").is_none(), "table {i}: {line}");
            if i % 2 == 0 {
                let (value, safe) = expected_audit(i);
                assert_eq!(
                    line.get("max_disclosure")
                        .and_then(Json::as_f64)
                        .unwrap()
                        .to_bits(),
                    value.to_bits(),
                    "table {i} disclosure diverged from the CLI path"
                );
                assert_eq!(line.get("safe").and_then(Json::as_bool), Some(safe));
            } else {
                let (minimal, evaluated, satisfied) = expected_search(i);
                let got: Vec<Vec<usize>> = line
                    .get("minimal")
                    .and_then(Json::as_array)
                    .unwrap()
                    .iter()
                    .map(|node| {
                        node.as_array()
                            .unwrap()
                            .iter()
                            .map(|l| l.as_u64().unwrap() as usize)
                            .collect()
                    })
                    .collect();
                assert_eq!(got, minimal, "table {i} minimal nodes diverged");
                assert_eq!(
                    line.get("evaluated").and_then(Json::as_u64),
                    Some(evaluated as u64)
                );
                assert_eq!(
                    line.get("satisfied").and_then(Json::as_u64),
                    Some(satisfied as u64)
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "missing indices");
    }

    // Cross-request cache effectiveness is observable, not hypothetical.
    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let hits = stats
        .get("engine_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits > 0, "no cross-request engine cache hits: {stats}");
    let batch_tables = stats
        .get("service")
        .and_then(|s| s.get("batch_tables"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(batch_tables, (TABLES * CLIENTS) as u64);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn search_honors_schedule_threads_and_memo_cap() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let request = Json::object(vec![
        ("csv", workload_csv(0).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
        (
            "hierarchy",
            Json::object(vec![("Age", Json::Array(vec![2u64.into(), 4u64.into()]))]),
        ),
        ("k", 1u64.into()),
        ("c", 0.9.into()),
        ("threads", 2u64.into()),
        ("schedule", "level".into()),
        ("memo_cap", 1u64.into()),
    ]);
    let out = client.post("/search", &request.to_string()).unwrap();
    assert_eq!(out.status, 200);
    let out = out.json().unwrap();

    // Library computation under the identical config.
    let table = workload_table(0);
    let age = table.column(0).dictionary().clone();
    let sex = table.column(1).dictionary().clone();
    let lattice = GeneralizationLattice::new(vec![
        (0, Hierarchy::intervals("Age", &age, &[2, 4]).unwrap()),
        (1, Hierarchy::suppression("Sex", &sex)),
    ])
    .unwrap();
    let outcome = find_minimal_safe_with(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.9, 1).unwrap(),
        &SearchConfig {
            threads: 2,
            schedule: Schedule::LevelSync,
            memo_capacity: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        out.get("evaluated").and_then(Json::as_u64),
        Some(outcome.evaluated as u64)
    );
    assert_eq!(
        out.get("minimal").and_then(Json::as_array).unwrap().len(),
        outcome.minimal_nodes.len()
    );
    // The memo budget reached the evaluator: at most 1 group retained.
    let memo_groups = out
        .get("rollup")
        .and_then(|r| r.get("memo_groups"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(memo_groups <= 1, "{out}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_4xx() {
    let (addr, handle, _service, join) = start(ServerConfig {
        max_body: 4096,
        ..ServerConfig::default()
    });

    // Garbage instead of a request line.
    let mut raw = connect(addr);
    raw.send_raw(b"EXPLODE\r\n\r\n").unwrap();
    assert_eq!(raw.read_response().unwrap().status, 400);

    // Bad JSON body.
    let mut client = connect(addr);
    let r = client.post("/audit", "{not json").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.json().unwrap().get("error").is_some());

    // Valid JSON, invalid request (missing sensitive).
    let r = client
        .post("/audit", "{\"csv\": \"A,B\\n1,2\\n\"}")
        .unwrap();
    assert_eq!(r.status, 400);

    // Batch with a non-array tables field.
    let r = client.post("/batch", "{\"tables\": 7}").unwrap();
    assert_eq!(r.status, 400);

    // Unknown endpoint and disallowed method.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    let mut raw = connect(addr);
    raw.send_raw(b"DELETE /audit HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(raw.read_response().unwrap().status, 405);

    // Oversized declared body.
    let mut raw = connect(addr);
    raw.send_raw(b"POST /audit HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
        .unwrap();
    assert_eq!(raw.read_response().unwrap().status, 413);

    // The service kept count.
    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let bad = stats
        .get("service")
        .and_then(|s| s.get("bad_requests"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(bad >= 5, "{stats}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// One worker, one queue slot: a stalled connection occupies the worker, a
/// second waits in the queue, and a third is rejected with 503 immediately.
/// Once the stall clears, both held connections are served.
#[test]
fn queue_full_gets_503_and_recovers() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    });

    // A: completes one request. Reading the response proves the lone
    // worker is now dedicated to A's keep-alive connection (parked in its
    // next blocking read) — held deterministically, no sleeps.
    let mut holder = connect(addr);
    assert_eq!(holder.get("/healthz").unwrap().status, 200);

    // B: accepted into the queue (the worker is busy with A) → queue full.
    // `Connection: close` so the worker moves on after eventually serving
    // it.
    let mut queued = connect(addr);
    queued
        .send_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();

    // C: connects after B's connect returned, so the single accept loop
    // enqueues B (filling the queue) before it reaches C → immediate 503.
    let mut rejected = connect(addr);
    let r = rejected.read_response().unwrap();
    assert_eq!(r.status, 503);
    assert!(r.json().unwrap().get("error").is_some());

    // A's next request asks to close, releasing the worker to drain B.
    holder
        .send_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(holder.read_response().unwrap().status, 200);
    assert_eq!(queued.read_response().unwrap().status, 200);

    let stats = connect(addr).get("/stats").unwrap().json().unwrap();
    let rejected_count = stats
        .get("server")
        .and_then(|s| s.get("rejected_503"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(rejected_count >= 1, "{stats}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Shutdown during a streaming batch: the batch runs to completion (every
/// line plus the summary arrives), then the server exits and the port
/// closes.
#[test]
fn graceful_shutdown_mid_batch() {
    const TABLES: usize = 24;
    let (addr, handle, service, join) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let jobs: Vec<Json> = (0..TABLES).map(search_job).collect();
    let batch = Json::object(vec![("tables", Json::Array(jobs))]).to_string();

    let mut client = connect(addr);
    let response = std::thread::scope(|scope| {
        let batch_client = scope.spawn(move || {
            let r = client.post("/batch", &batch).unwrap();
            (r.status, r.ndjson().unwrap())
        });
        // Wait until the server has *accepted* the batch (its request fully
        // read and validated) before racing shutdown against the stream —
        // shutdown's read-half sweep may legitimately drop a request whose
        // bytes are still arriving, which is not what this test pins.
        // Correctness does not depend on shutdown overlapping the stream,
        // only the assertions below do not.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            let batches = service
                .stats()
                .into_iter()
                .find(|(k, _)| *k == "service")
                .and_then(|(_, v)| v.get("batches").and_then(Json::as_u64))
                .unwrap_or(0);
            if batches >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut killer = connect(addr);
        let r = killer.post("/shutdown", "{}").unwrap();
        assert_eq!(r.status, 200);
        batch_client.join().unwrap()
    });
    let (status, lines) = response;
    assert_eq!(status, 200);
    assert_eq!(lines.len(), TABLES + 1, "batch truncated by shutdown");
    assert_eq!(
        lines.last().unwrap().get("done").and_then(Json::as_bool),
        Some(true)
    );
    for line in &lines[..TABLES] {
        assert!(line.get("error").is_none(), "{line}");
    }

    assert!(handle.is_shutting_down());
    join.join().unwrap().unwrap();
    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "port still open");
}

/// Keep-alive reuse: many requests over one connection, mixed endpoints.
#[test]
fn persistent_connections_serve_sequential_requests() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    for i in 0..5 {
        let r = client.post("/audit", &audit_job(i).to_string()).unwrap();
        assert_eq!(r.status, 200, "request {i}");
        let body = r.json().unwrap();
        let (value, safe) = expected_audit(i);
        assert_eq!(
            body.get("max_disclosure")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            value.to_bits()
        );
        assert_eq!(body.get("safe").and_then(Json::as_bool), Some(safe));
    }
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Registers workload table `i` over HTTP and returns its handle id.
fn register(client: &mut Client, i: usize) -> String {
    let body = Json::object(vec![
        ("csv", workload_csv(i).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
    ]);
    let r = client.post("/tables", &body.to_string()).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    r.json()
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

/// Sends `DELETE /tables/{id}` (the client helper only speaks GET/POST).
fn delete_table(client: &mut Client, id: &str) -> u16 {
    client
        .send_raw(format!("DELETE /tables/{id} HTTP/1.1\r\nHost: wcbk\r\n\r\n").as_bytes())
        .unwrap();
    client.read_response().unwrap().status
}

/// The acceptance pin for the dataset-handle redesign: `POST /tables` then
/// N× `/tables/{id}/audit` performs **exactly one row scan total**
/// (`RollupStats::table_scans == 1` in the per-session `/stats` snapshot),
/// with every audit bit-identical to the one-shot path.
#[test]
fn register_then_n_audits_scans_once() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);

    let id = register(&mut client, 0);
    // Re-registering identical content returns the same handle.
    let body = Json::object(vec![
        ("csv", workload_csv(0).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
    ]);
    let again = client.post("/tables", &body.to_string()).unwrap();
    assert_eq!(
        again.json().unwrap().get("id").unwrap().as_str(),
        Some(id.as_str())
    );
    assert_eq!(
        again.json().unwrap().get("created").unwrap().as_bool(),
        Some(false)
    );

    let (want_value, want_safe) = expected_audit(0);
    let audit_body = Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]).to_string();
    for round in 0..8 {
        let r = client
            .post(&format!("/tables/{id}/audit"), &audit_body)
            .unwrap();
        assert_eq!(r.status, 200, "round {round}: {}", r.body);
        let out = r.json().unwrap();
        assert_eq!(
            out.get("max_disclosure")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            want_value.to_bits(),
            "round {round}"
        );
        assert_eq!(out.get("safe").unwrap().as_bool(), Some(want_safe));
    }
    // And a few handle searches for good measure — still no new scan.
    let search_body = Json::object(vec![
        ("k", 0u64.into()),
        ("c", 0.9.into()),
        ("threads", 2u64.into()),
        ("schedule", "steal".into()),
    ])
    .to_string();
    let (want_minimal, want_evaluated, want_satisfied) = expected_search(0);
    for _ in 0..3 {
        let r = client
            .post(&format!("/tables/{id}/search"), &search_body)
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let out = r.json().unwrap();
        let minimal: Vec<Vec<usize>> = out
            .get("minimal")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|n| {
                n.as_array()
                    .unwrap()
                    .iter()
                    .map(|l| l.as_u64().unwrap() as usize)
                    .collect()
            })
            .collect();
        assert_eq!(minimal, want_minimal);
        assert_eq!(
            out.get("evaluated").unwrap().as_u64(),
            Some(want_evaluated as u64)
        );
        assert_eq!(
            out.get("satisfied").unwrap().as_u64(),
            Some(want_satisfied as u64)
        );
    }

    // The one-scan assertion, via the per-session /stats snapshot.
    let stats = client.get("/stats").unwrap().json().unwrap();
    let per_session = stats
        .get("sessions")
        .unwrap()
        .get("per_session")
        .unwrap()
        .as_array()
        .unwrap();
    let entry = per_session
        .iter()
        .find(|s| s.get("id").unwrap().as_str() == Some(id.as_str()))
        .expect("registered session missing from /stats");
    assert_eq!(
        entry
            .get("rollup")
            .unwrap()
            .get("table_scans")
            .unwrap()
            .as_u64(),
        Some(1),
        "register + N audits must scan exactly once: {entry}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The handle batch endpoint streams job results bit-identical to the
/// library paths, and the release → composition flow works over HTTP.
#[test]
fn handle_batch_release_and_composition_roundtrip() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let id = register(&mut client, 3);

    // Batch: alternating audit/search jobs against the one evaluator.
    let jobs: Vec<Json> = (0..6)
        .map(|j| {
            if j % 2 == 0 {
                Json::object(vec![
                    ("op", "audit".into()),
                    ("k", 1u64.into()),
                    ("c", 0.9.into()),
                ])
            } else {
                Json::object(vec![
                    ("op", "search".into()),
                    ("k", 0u64.into()),
                    ("c", 0.9.into()),
                    ("threads", 2u64.into()),
                    ("schedule", "steal".into()),
                ])
            }
        })
        .collect();
    let body = Json::object(vec![("jobs", Json::Array(jobs))]).to_string();
    let r = client.post(&format!("/tables/{id}/batch"), &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let lines = r.ndjson().unwrap();
    assert_eq!(lines.len(), 7, "6 results + summary");
    let (want_value, want_safe) = expected_audit(3);
    let (want_minimal, _, _) = expected_search(3);
    for line in &lines[..6] {
        assert!(line.get("error").is_none(), "{line}");
        assert_eq!(line.get("id").unwrap().as_str(), Some(id.as_str()));
        match line.get("op").unwrap().as_str().unwrap() {
            "audit" => {
                assert_eq!(
                    line.get("max_disclosure")
                        .unwrap()
                        .as_f64()
                        .unwrap()
                        .to_bits(),
                    want_value.to_bits()
                );
                assert_eq!(line.get("safe").unwrap().as_bool(), Some(want_safe));
            }
            "search" => {
                let minimal: Vec<Vec<usize>> = line
                    .get("minimal")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|n| {
                        n.as_array()
                            .unwrap()
                            .iter()
                            .map(|l| l.as_u64().unwrap() as usize)
                            .collect()
                    })
                    .collect();
                assert_eq!(minimal, want_minimal);
            }
            other => panic!("unexpected op {other}"),
        }
    }
    assert_eq!(lines[6].get("done").unwrap().as_bool(), Some(true));

    // Release twice, audit the composition, compare to the library.
    for node in [[1u64, 1u64], [1, 0]] {
        let body = Json::object(vec![(
            "node",
            Json::Array(node.iter().map(|&l| l.into()).collect()),
        )]);
        let r = client
            .post(&format!("/tables/{id}/release"), &body.to_string())
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let r = client
        .post(
            &format!("/tables/{id}/composition"),
            &Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]).to_string(),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let out = r.json().unwrap();
    assert_eq!(out.get("releases").unwrap().as_u64(), Some(2));
    assert_eq!(out.get("buckets").unwrap().as_u64(), Some(3));
    // Direct: union of the two releases' histograms through incremental_set.
    let table = workload_table(3);
    let age = table.column(0).dictionary().clone();
    let sex = table.column(1).dictionary().clone();
    let lattice = GeneralizationLattice::new(vec![
        (0, Hierarchy::suppression("Age", &age)),
        (1, Hierarchy::suppression("Sex", &sex)),
    ])
    .unwrap();
    let mut histograms = Vec::new();
    for node in [vec![1usize, 1], vec![1, 0]] {
        let b = lattice
            .bucketize(&table, &wcbk_hierarchy::GenNode(node))
            .unwrap();
        histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));
    }
    let set =
        wcbk_core::HistogramSet::new(histograms, table.sensitive_cardinality() as u32).unwrap();
    let engine = DisclosureEngine::new(1);
    let direct = engine.incremental_set(&set).unwrap().value();
    assert_eq!(
        out.get("max_disclosure")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        direct.to_bits()
    );

    // Info, then drop; the handle is gone (404) afterwards.
    assert_eq!(client.get(&format!("/tables/{id}")).unwrap().status, 200);
    assert_eq!(delete_table(&mut client, &id), 200);
    assert_eq!(client.get(&format!("/tables/{id}")).unwrap().status, 404);
    assert_eq!(
        client
            .post(&format!("/tables/{id}/audit"), "{}")
            .unwrap()
            .status,
        404
    );
    assert_eq!(delete_table(&mut client, &id), 404);
    // Wrong method on a handle action is 405; unknown action 404.
    assert_eq!(
        client.get(&format!("/tables/{id}/audit")).unwrap().status,
        405
    );
    assert_eq!(
        client
            .post(&format!("/tables/{id}/explode"), "{}")
            .unwrap()
            .status,
        404
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Concurrent register / audit / evict / delete races on a tiny session
/// budget: every audit answer is either the table's correct value or a
/// clean 404 (evicted/dropped handle) — never a wrong answer, and the
/// server survives to serve a correct audit afterwards.
#[test]
fn session_eviction_races_never_answer_wrong() {
    let (addr, handle, _service, join) = start(ServerConfig {
        workers: 4,
        limits: wcbk_serve::ServiceLimits {
            // Each 6-row workload table weighs 6 bottom groups: budget 13
            // holds at most two sessions, so registrations evict constantly.
            session_budget: Some(13),
            ..Default::default()
        },
        ..ServerConfig::default()
    });

    let n_tables = 4usize;
    let expected: Vec<(f64, bool)> = (0..n_tables).map(expected_audit).collect();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = connect(addr);
                let audit_body =
                    Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]).to_string();
                for round in 0..12 {
                    let i = (worker + round) % n_tables;
                    let id = register(&mut client, i);
                    // Audit the handle we just registered; it may already
                    // have been evicted by a racing registration, or even
                    // deleted by a racing worker — both must be clean 404s.
                    let r = client
                        .post(&format!("/tables/{id}/audit"), &audit_body)
                        .unwrap();
                    match r.status {
                        200 => {
                            let out = r.json().unwrap();
                            assert_eq!(
                                out.get("max_disclosure")
                                    .unwrap()
                                    .as_f64()
                                    .unwrap()
                                    .to_bits(),
                                expected[i].0.to_bits(),
                                "worker {worker} round {round} table {i}: wrong answer"
                            );
                            assert_eq!(out.get("safe").unwrap().as_bool(), Some(expected[i].1));
                        }
                        404 => {} // evicted or deleted underfoot — fine
                        other => panic!("worker {worker} round {round}: HTTP {other}: {}", r.body),
                    }
                    if round % 5 == 4 {
                        // Racing deletes: 200 or 404 both acceptable.
                        let status = delete_table(&mut client, &id);
                        assert!(status == 200 || status == 404, "delete: HTTP {status}");
                    }
                }
            });
        }
    });

    // After the storm: the store is within budget and still serves.
    let mut client = connect(addr);
    let id = register(&mut client, 0);
    let r = client
        .post(
            &format!("/tables/{id}/audit"),
            &Json::object(vec![("k", 1u64.into()), ("c", 0.9.into())]).to_string(),
        )
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(
        r.json()
            .unwrap()
            .get("max_disclosure")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        expected[0].0.to_bits()
    );
    let stats = client.get("/stats").unwrap().json().unwrap();
    let sessions = stats.get("sessions").unwrap();
    assert!(sessions.get("groups").unwrap().as_u64().unwrap() <= 13);
    assert!(sessions.get("evictions").unwrap().as_u64().unwrap() > 0);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `GET /metrics` serves well-formed Prometheus text: HELP/TYPE lines per
/// family, every pre-registered series present on a cold scrape, and
/// traffic-driven counters moving after requests.
#[test]
fn metrics_exposition_is_well_formed_and_counts_requests() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);

    // Cold scrape: every family is pre-registered, all zeros.
    let cold = client.get("/metrics").unwrap();
    assert_eq!(cold.status, 200);
    assert!(
        cold.header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "{:?}",
        cold.headers
    );
    for family in [
        "wcbk_http_requests_total",
        "wcbk_http_request_micros",
        "wcbk_http_queue_wait_micros",
        "wcbk_http_response_bytes_total",
        "wcbk_http_slow_requests_total",
        "wcbk_sched_steals_total",
        "wcbk_sched_speculated_total",
        "wcbk_sched_abandoned_total",
        "wcbk_search_scan_micros_total",
        "wcbk_search_derive_micros_total",
        "wcbk_search_derived_total",
        "wcbk_search_table_scans_total",
        "wcbk_minimize1_build_micros_total",
        "wcbk_store_wal_appends_total",
        "wcbk_pool_entries",
        "wcbk_pool_groups",
        "wcbk_pool_peak_groups",
    ] {
        assert!(
            cold.body.contains(&format!("# TYPE {family} ")),
            "missing TYPE for {family} in:\n{}",
            cold.body
        );
    }
    // Well-formed exposition: every non-comment line is `name{labels} value`.
    for line in cold.body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(
            series.starts_with("wcbk_"),
            "unexpected series name: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "bad value in: {line}"
        );
    }

    // Drive traffic, then check the counters moved.
    let audit = client.post("/audit", &audit_job(0).to_string()).unwrap();
    assert_eq!(audit.status, 200);
    let search = client.post("/search", &search_job(0).to_string()).unwrap();
    assert_eq!(search.status, 200);
    let warm = client.get("/metrics").unwrap().body;
    let series_value = |name: &str| -> f64 {
        warm.lines()
            .filter(|l| l.starts_with(name) && !l.starts_with('#'))
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
            .sum()
    };
    assert!(
        series_value("wcbk_http_requests_total") >= 3.0,
        "requests_total:\n{warm}"
    );
    assert!(series_value("wcbk_http_response_bytes_total") > 0.0);
    assert!(series_value("wcbk_search_table_scans_total") >= 1.0);
    assert!(series_value("wcbk_minimize1_build_micros_total") > 0.0);
    // Histogram invariant: the +Inf bucket equals the count.
    let inf = warm
        .lines()
        .find(|l| l.starts_with("wcbk_http_queue_wait_micros_bucket") && l.contains("+Inf"))
        .and_then(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .expect("+Inf bucket");
    let count = series_value("wcbk_http_queue_wait_micros_count");
    assert_eq!(inf, count, "{warm}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Trace propagation: a client-supplied `X-Request-Id` is echoed on the
/// response (JSON, plain-text, and chunked alike); absent or garbage ids
/// get a generated one.
#[test]
fn trace_id_echoes_on_every_response_shape() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);

    // Generated when absent.
    let r = client.get("/healthz").unwrap();
    let generated = r.header("x-request-id").expect("generated id").to_owned();
    assert!(!generated.is_empty() && generated.len() <= 64);

    // Echoed verbatim on a JSON response.
    client
        .send_raw(
            format!(
                "POST /audit HTTP/1.1\r\nHost: wcbk\r\nX-Request-Id: trace-me-42\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                audit_job(0).to_string().len(),
                audit_job(0)
            )
            .as_bytes(),
        )
        .unwrap();
    let r = client.read_response().unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-request-id"), Some("trace-me-42"));

    // Echoed on the plain-text /metrics response.
    client
        .send_raw(b"GET /metrics HTTP/1.1\r\nHost: wcbk\r\nX-Request-Id: scrape-7\r\n\r\n")
        .unwrap();
    let r = client.read_response().unwrap();
    assert_eq!(r.header("x-request-id"), Some("scrape-7"));

    // Echoed on a chunked batch response.
    let batch = Json::object(vec![(
        "tables",
        Json::Array(vec![audit_job(0), audit_job(1)]),
    )])
    .to_string();
    client
        .send_raw(
            format!(
                "POST /batch HTTP/1.1\r\nHost: wcbk\r\nX-Request-Id: batch-9\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{batch}",
                batch.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let r = client.read_response().unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-request-id"), Some("batch-9"));
    assert_eq!(r.ndjson().unwrap().len(), 3); // 2 results + summary

    // A header full of control bytes is replaced, not echoed.
    client
        .send_raw(b"GET /healthz HTTP/1.1\r\nHost: wcbk\r\nX-Request-Id: bad\x01id\r\n\r\n")
        .unwrap();
    let r = client.read_response().unwrap();
    let replaced = r.header("x-request-id").expect("replacement id");
    assert_ne!(replaced, "bad\x01id");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `"profile": true` returns a per-phase breakdown whose phases sum
/// exactly to `total_micros`, on both audit and search, without perturbing
/// the verdict.
#[test]
fn profile_flag_returns_phase_breakdown_that_sums_to_total() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);

    let plain = client
        .post("/audit", &audit_job(0).to_string())
        .unwrap()
        .json()
        .unwrap();
    assert!(plain.get("profile").is_none(), "{plain}");

    for job in [audit_job(0), search_job(0)] {
        let mut body = job;
        if let Json::Object(pairs) = &mut body {
            pairs.push(("profile".to_owned(), true.into()));
        }
        let op = body.get("op").and_then(Json::as_str).unwrap().to_owned();
        let out = client
            .post(&format!("/{op}"), &body.to_string())
            .unwrap()
            .json()
            .unwrap();
        let profile = out.get("profile").unwrap_or_else(|| panic!("{out}"));
        let field = |k: &str| profile.get(k).and_then(Json::as_u64).expect(k);
        let (parse, queue, compute, total) = (
            field("parse_micros"),
            field("queue_wait_micros"),
            field("compute_micros"),
            field("total_micros"),
        );
        assert_eq!(parse + queue + compute, total, "{op}: {profile}");
        let detail = profile.get("detail").expect("detail");
        assert!(detail.get("minimize1_build_micros").is_some(), "{detail}");
        if op == "search" {
            // The one-shot search's table scan happened inside compute.
            assert!(detail.get("scan_micros").is_some(), "{detail}");
            assert!(field("compute_micros") >= 1);
        }
        // The verdict fields are unchanged by profiling.
        assert!(out.get("max_disclosure").is_some() || out.get("minimal").is_some());
    }

    // Profile also rides on /tables/{id}/audit.
    let reg = Json::object(vec![
        ("csv", workload_csv(0).into()),
        ("sensitive", "Disease".into()),
        ("qi", Json::Array(vec!["Age".into(), "Sex".into()])),
    ]);
    let id = client
        .post("/tables", &reg.to_string())
        .unwrap()
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    let out = client
        .post(
            &format!("/tables/{id}/audit"),
            &Json::object(vec![
                ("k", 1u64.into()),
                ("c", 0.9.into()),
                ("profile", true.into()),
            ])
            .to_string(),
        )
        .unwrap()
        .json()
        .unwrap();
    let profile = out.get("profile").unwrap_or_else(|| panic!("{out}"));
    assert!(profile.get("total_micros").is_some(), "{profile}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `/stats` reports the observability additions: pool high-water marks and
/// reactor queue-wait totals.
#[test]
fn stats_reports_pool_peaks_and_queue_wait() {
    let (addr, handle, _service, join) = start(ServerConfig::default());
    let mut client = connect(addr);
    let r = client.post("/search", &search_job(0).to_string()).unwrap();
    assert_eq!(r.status, 200);

    let stats = client.get("/stats").unwrap().json().unwrap();
    let engine_cache = stats.get("engine_cache").unwrap();
    assert!(
        engine_cache
            .get("peak_groups")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "{engine_cache}"
    );
    assert!(engine_cache.get("build_micros").is_some());
    let sessions = stats.get("sessions").unwrap();
    assert!(sessions.get("peak_groups").is_some(), "{sessions}");
    let rollup = stats.get("rollup").unwrap();
    assert!(rollup.get("scan_micros").is_some(), "{rollup}");
    assert!(rollup.get("derive_micros").is_some());
    let server = stats.get("server").unwrap();
    let dispatched = server.get("dispatched").and_then(Json::as_u64).unwrap();
    assert!(dispatched >= 1, "{server}");
    assert!(server.get("queue_wait_micros").is_some());

    handle.shutdown();
    join.join().unwrap().unwrap();
}
