//! # wcbk-bench — experiment harness
//!
//! Shared experiment logic behind the figure-regeneration binaries
//! (`fig5`, `fig6`, `example_tables`, `safe_search`) and the Criterion
//! benches. Each experiment corresponds to a row of the per-experiment index
//! in `DESIGN.md` and a section of `EXPERIMENTS.md`.

use std::io::Write;
use std::path::Path;

use wcbk_core::{max_disclosure, negation_max_disclosure, Bucketization, DisclosureEngine};
use wcbk_hierarchy::adult::{adult_lattice, figure5_node};
use wcbk_hierarchy::{GenNode, HierarchyError, NodeEvaluator};
use wcbk_table::Table;

/// Any harness error, stringly typed — the binaries only print it.
pub type HarnessError = Box<dyn std::error::Error>;

/// One row of the Figure 5 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Number of pieces of background knowledge `k`.
    pub k: usize,
    /// Maximum disclosure for `k` basic implications (solid line).
    pub implication: f64,
    /// Maximum disclosure for `k` negated atoms (dotted line).
    pub negation: f64,
}

/// Regenerates Figure 5: maximum disclosure vs. `k` for both languages on
/// the paper's anonymization (Age → 20-year intervals, all other
/// quasi-identifiers suppressed).
pub fn figure5(table: &Table, k_max: usize) -> Result<Vec<Fig5Row>, HarnessError> {
    let lattice = adult_lattice(table)?;
    let b = lattice.bucketize(table, &figure5_node())?;
    figure5_on(&b, k_max)
}

/// Figure 5 series on an explicit bucketization.
pub fn figure5_on(b: &Bucketization, k_max: usize) -> Result<Vec<Fig5Row>, HarnessError> {
    let mut rows = Vec::with_capacity(k_max + 1);
    for k in 0..=k_max {
        rows.push(Fig5Row {
            k,
            implication: max_disclosure(b, k)?.value,
            negation: negation_max_disclosure(b, k)?.value,
        });
    }
    Ok(rows)
}

/// One point of a Figure 6 series: a distinct min-entropy value and the
/// least maximum disclosure among anonymized tables attaining it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Minimum per-bucket entropy `h` of the anonymized table (natural log).
    pub entropy: f64,
    /// `w(T(h), k)`: least maximum disclosure among tables with this `h`.
    pub disclosure: f64,
}

/// Per-node statistics collected by the Figure 6 sweep (also reused by the
/// lattice-profiling bench).
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// The lattice node.
    pub node: GenNode,
    /// Buckets induced.
    pub n_buckets: usize,
    /// Minimum per-bucket entropy.
    pub min_entropy: f64,
    /// Maximum disclosure per requested `k` (aligned with the `ks` input).
    pub disclosures: Vec<f64>,
}

/// Sweeps the full 72-node Adult lattice, computing min-entropy and maximum
/// disclosure for each `k` in `ks` at every node.
///
/// Runs on the roll-up pipeline — one table scan, every node evaluated from
/// merged histograms — falling back to per-node `bucketize` only when the
/// packed signature overflows.
pub fn profile_adult_lattice(
    table: &Table,
    ks: &[usize],
) -> Result<Vec<NodeProfile>, HarnessError> {
    let lattice = adult_lattice(table)?;
    let engines: Vec<DisclosureEngine> = ks.iter().map(|&k| DisclosureEngine::new(k)).collect();
    let evaluator = match NodeEvaluator::new(table, &lattice) {
        Ok(eval) => Some(eval),
        Err(HierarchyError::SignatureOverflow { .. }) => None,
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::with_capacity(lattice.n_nodes());
    for node in lattice.nodes() {
        let h = match &evaluator {
            Some(eval) => eval.histograms(&node)?,
            None => wcbk_core::HistogramSet::from_bucketization(&lattice.bucketize(table, &node)?),
        };
        let disclosures = engines
            .iter()
            .map(|e| e.max_disclosure_value_set(&h))
            .collect::<Result<Vec<f64>, _>>()?;
        out.push(NodeProfile {
            node,
            n_buckets: h.n_buckets(),
            min_entropy: h.min_bucket_entropy(),
            disclosures,
        });
    }
    Ok(out)
}

/// Regenerates Figure 6 from a lattice profile: for each `k`, the
/// min-entropy → least-max-disclosure curve (entropy rounded to
/// `precision` decimals to group nodes attaining "the same" `h`).
pub fn figure6(
    profiles: &[NodeProfile],
    ks: &[usize],
    precision: u32,
) -> Vec<(usize, Vec<Fig6Point>)> {
    let scale = 10f64.powi(precision as i32);
    ks.iter()
        .enumerate()
        .map(|(ki, &k)| {
            let mut best: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
            for p in profiles {
                let key = (p.min_entropy * scale).round() as i64;
                let d = p.disclosures[ki];
                best.entry(key)
                    .and_modify(|cur| {
                        if d < *cur {
                            *cur = d;
                        }
                    })
                    .or_insert(d);
            }
            let points = best
                .into_iter()
                .map(|(key, disclosure)| Fig6Point {
                    entropy: key as f64 / scale,
                    disclosure,
                })
                .collect();
            (k, points)
        })
        .collect()
}

/// Writes rows as CSV under `results/` (creating the directory), returning
/// the path written.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> Result<std::path::PathBuf, HarnessError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let file = std::fs::File::create(path)?;
    let mut w = wcbk_table::csv::CsvWriter::new(std::io::BufWriter::new(file));
    w.write_record(header)?;
    for row in rows {
        w.write_record(row)?;
    }
    w.flush()?;
    Ok(path.to_path_buf())
}

/// Prints an aligned two-dimensional table to any writer.
pub fn print_aligned<W: Write>(
    out: &mut W,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("{:>width$}  ", h, width = widths[i]));
    }
    writeln!(out, "{}", line.trim_end())?;
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        writeln!(out, "{}", line.trim_end())?;
    }
    Ok(())
}

/// The default synthetic Adult table used by the experiment binaries.
pub fn default_adult() -> Table {
    wcbk_datagen::adult::synthetic_adult(wcbk_datagen::adult::AdultConfig::default())
}

/// Resolves the experiment binaries' common argument forms into a table:
///
/// * `--adult-csv <path>` — load the genuine UCI `adult.data` file;
/// * `[n_rows] [seed]` — generate synthetic Adult (defaults 45,222 /
///   the crate default seed).
pub fn load_table_arg(args: &[String]) -> Result<Table, HarnessError> {
    if let Some(pos) = args.iter().position(|a| a == "--adult-csv") {
        let path = args.get(pos + 1).ok_or("--adult-csv needs a file path")?;
        eprintln!("loading real Adult data from {path}…");
        let file = std::fs::File::open(path)?;
        let table = wcbk_datagen::adult::adult_from_reader(std::io::BufReader::new(file))?;
        return Ok(table);
    }
    let n_rows: usize = args
        .first()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(45_222);
    let seed: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or_else(|| wcbk_datagen::adult::AdultConfig::default().seed);
    eprintln!("generating synthetic Adult ({n_rows} rows, seed {seed})…");
    Ok(wcbk_datagen::adult::synthetic_adult(
        wcbk_datagen::adult::AdultConfig { n_rows, seed },
    ))
}

/// A smaller Adult table for quick benches.
pub fn small_adult(n_rows: usize) -> Table {
    wcbk_datagen::adult::synthetic_adult(wcbk_datagen::adult::AdultConfig {
        n_rows,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_holds_on_small_adult() {
        let t = small_adult(4000);
        let rows = figure5(&t, 13).unwrap();
        assert_eq!(rows.len(), 14);
        // Monotone in k; implication dominates negation; reaches 1 at k=13.
        for w in rows.windows(2) {
            assert!(w[1].implication >= w[0].implication - 1e-12);
            assert!(w[1].negation >= w[0].negation - 1e-12);
        }
        for r in &rows {
            assert!(
                r.implication >= r.negation - 1e-12,
                "k={}: imp {} < neg {}",
                r.k,
                r.implication,
                r.negation
            );
        }
        assert!((rows[13].implication - 1.0).abs() < 1e-9);
        assert!((rows[13].negation - 1.0).abs() < 1e-9);
        assert!(rows[0].implication < 0.8, "k=0 should not be disclosive");
    }

    #[test]
    fn figure6_series_decrease_with_entropy() {
        let t = small_adult(4000);
        let ks = [1usize, 5, 11];
        let profiles = profile_adult_lattice(&t, &ks).unwrap();
        assert_eq!(profiles.len(), 72);
        let series = figure6(&profiles, &ks, 2);
        assert_eq!(series.len(), 3);
        for (k, points) in &series {
            assert!(!points.is_empty(), "k={k} empty");
            // Broad trend: the best disclosure at the highest entropy is no
            // worse than at the lowest entropy.
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            assert!(
                last.disclosure <= first.disclosure + 1e-9,
                "k={k}: {first:?} -> {last:?}"
            );
        }
        // Larger k ⇒ pointwise larger disclosure at equal entropy keys.
        let by_k: std::collections::HashMap<usize, &Vec<Fig6Point>> =
            series.iter().map(|(k, v)| (*k, v)).collect();
        for (p1, p11) in by_k[&1].iter().zip(by_k[&11].iter()) {
            assert!(p11.disclosure >= p1.disclosure - 1e-9);
        }
    }

    #[test]
    fn load_table_arg_forms() {
        // Positional n_rows/seed.
        let t = load_table_arg(&["300".into(), "5".into()]).unwrap();
        assert_eq!(t.n_rows(), 300);
        // --adult-csv path.
        let dir = std::env::temp_dir().join("wcbk_load_arg");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adult.data");
        std::fs::write(
            &path,
            "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, \
             Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n",
        )
        .unwrap();
        let t = load_table_arg(&["--adult-csv".into(), path.display().to_string()]).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.value(0, 4), "Adm-clerical");
        // Missing path errors.
        assert!(load_table_arg(&["--adult-csv".into()]).is_err());
    }

    #[test]
    fn csv_and_table_output() {
        let dir = std::env::temp_dir().join("wcbk_bench_test");
        let path = dir.join("out.csv");
        let rows = vec![vec!["1".to_owned(), "0.5".to_owned()]];
        let written = write_csv(&path, &["k", "v"], &rows).unwrap();
        let content = std::fs::read_to_string(written).unwrap();
        assert_eq!(content, "k,v\n1,0.5\n");
        let mut buf = Vec::new();
        print_aligned(&mut buf, &["k", "value"], &rows).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("value"));
        assert!(text.contains("0.5"));
    }
}
