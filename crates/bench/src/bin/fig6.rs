//! E3 — regenerates **Figure 6**: minimum per-bucket entropy vs. the least
//! achievable maximum disclosure, for k ∈ {1,3,5,7,9,11}, over all 72 nodes
//! of the Adult generalization lattice.
//!
//! Run: `cargo run --release -p wcbk-bench --bin fig6 [n_rows] [seed]`
//! or, with the genuine UCI file:
//! `cargo run --release -p wcbk-bench --bin fig6 --adult-csv path/to/adult.data`
//! Output: per-k series on stdout + `results/fig6.csv`
//! (+ `results/fig6_nodes.csv` with the raw per-node profile).

use wcbk_bench::{
    figure6, load_table_arg, print_aligned, profile_adult_lattice, write_csv, HarnessError,
};

fn main() -> Result<(), HarnessError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ks = [1usize, 3, 5, 7, 9, 11];
    let table = load_table_arg(&args)?;
    eprintln!("sweeping the 72-node lattice for k = {ks:?}…");
    let profiles = profile_adult_lattice(&table, &ks)?;

    // Raw per-node dump.
    let node_header = [
        "node",
        "buckets",
        "min_entropy",
        "k1",
        "k3",
        "k5",
        "k7",
        "k9",
        "k11",
    ];
    let node_rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            let mut row = vec![
                p.node.to_string(),
                p.n_buckets.to_string(),
                format!("{:.4}", p.min_entropy),
            ];
            row.extend(p.disclosures.iter().map(|d| format!("{d:.6}")));
            row
        })
        .collect();
    let nodes_path = write_csv("results/fig6_nodes.csv", &node_header, &node_rows)?;
    eprintln!("wrote {}", nodes_path.display());

    // The Figure 6 series.
    let series = figure6(&profiles, &ks, 2);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    println!("Figure 6: entropy vs maximum disclosure risk\n");
    for (k, points) in &series {
        println!("-- number of implications = {k} --");
        let cells: Vec<Vec<String>> = points
            .iter()
            .map(|p| vec![format!("{:.2}", p.entropy), format!("{:.6}", p.disclosure)])
            .collect();
        print_aligned(
            &mut std::io::stdout(),
            &["min_entropy", "min_worst_case"],
            &cells,
        )?;
        println!();
        for p in points {
            csv_rows.push(vec![
                k.to_string(),
                format!("{:.2}", p.entropy),
                format!("{:.6}", p.disclosure),
            ]);
        }
    }
    let path = write_csv(
        "results/fig6.csv",
        &["k", "min_entropy", "min_worst_case"],
        &csv_rows,
    )?;
    eprintln!("wrote {}", path.display());

    // Shape check: for each k, disclosure trend decreases with entropy.
    for (k, points) in &series {
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            let decreasing = last.disclosure <= first.disclosure + 1e-9;
            println!("k={k}: disclosure decreases with entropy: {decreasing}");
        }
    }
    Ok(())
}
