//! E1 — reproduces the paper's running example: Figures 1–3 and every
//! probability quoted in Sections 1–2.3 (Ed's 2/5 → 1/2 → certainty, the
//! Hannah/Charlie 10/19, and the true `L¹` maximum disclosure 2/3).
//!
//! Run: `cargo run -p wcbk-bench --bin example_tables`

use wcbk_bench::{print_aligned, HarnessError};
use wcbk_core::{max_disclosure, negation_max_disclosure, Bucketization};
use wcbk_logic::parser::{parse_knowledge, SymbolTable};
use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
use wcbk_worlds::inference::{atom_probability_given, disclosure_risk};
use wcbk_worlds::{BucketSpec, WorldSpace};

fn main() -> Result<(), HarnessError> {
    let table = hospital_table();
    let symbols = SymbolTable::from_table(&table, "Name")?;

    println!("== Figure 1: the original table ==");
    let header: Vec<&str> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name())
        .collect();
    let rows: Vec<Vec<String>> = (0..table.n_rows()).map(|r| table.row(r)).collect();
    print_aligned(&mut std::io::stdout(), &header, &rows)?;

    let buckets = Bucketization::from_grouping(&table, hospital_bucket_of)?;
    println!("\n== Figure 3: the bucketized table (per-bucket histograms) ==");
    for (i, b) in buckets.buckets().iter().enumerate() {
        let members: Vec<String> = b
            .members()
            .iter()
            .map(|&t| table.value(t.index(), 0).to_owned())
            .collect();
        let hist: Vec<String> = b
            .histogram()
            .iter_counts()
            .map(|(v, c)| {
                format!(
                    "{}x{}",
                    c,
                    table.sensitive_column().dictionary().resolve(v.0)
                )
            })
            .collect();
        println!(
            "bucket {i}: {{{}}} -> {{{}}}",
            members.join(", "),
            hist.join(", ")
        );
    }

    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )?;

    println!("\n== Section 1 worked probabilities (exact random-worlds inference) ==");
    let ed_lung = wcbk_logic::Atom::new(
        wcbk_table::datasets::hospital_person(&table, "Ed").unwrap(),
        table.sensitive_code("Lung Cancer").unwrap(),
    );
    let none = wcbk_logic::Knowledge::none();
    let p0 = atom_probability_given(&space, ed_lung, &none)?.unwrap();
    println!("Pr(Ed = Lung Cancer | B)                       = {p0}   (paper: 2/5)");

    let not_mumps = parse_knowledge("!t[Ed]=Mumps", &symbols)?;
    let p1 = atom_probability_given(&space, ed_lung, &not_mumps)?.unwrap();
    println!("Pr(Ed = Lung Cancer | B, Ed has had mumps)     = {p1}   (paper: 1/2)");

    let neither = parse_knowledge("!t[Ed]=Mumps ; !t[Ed]=Flu", &symbols)?;
    let p2 = atom_probability_given(&space, ed_lung, &neither)?.unwrap();
    println!("Pr(Ed = Lung Cancer | B, no mumps and no flu)  = {p2}     (paper: certain)");

    let hannah_charlie = parse_knowledge("t[Hannah]=Flu -> t[Charlie]=Flu", &symbols)?;
    let charlie_flu = wcbk_logic::Atom::new(
        wcbk_table::datasets::hospital_person(&table, "Charlie").unwrap(),
        table.sensitive_code("Flu").unwrap(),
    );
    let p3 = atom_probability_given(&space, charlie_flu, &hannah_charlie)?.unwrap();
    println!("Pr(Charlie = Flu | B, Hannah flu -> Charlie flu) = {p3} (paper: 10/19)");
    let (risk, _) = disclosure_risk(&space, &hannah_charlie)?.unwrap();
    println!("disclosure risk of that specific phi           = {risk}");

    println!("\n== Maximum disclosure of the Figure 3 bucketization ==");
    println!("(the paper's prose says 10/19 for k=1; its own algorithm yields 2/3 —");
    println!(" the negation-equivalent implication inside the male bucket; see DESIGN.md)");
    let header = ["k", "implications", "negated atoms", "worst-case attacker"];
    let mut rows = Vec::new();
    for k in 0..=4usize {
        let imp = max_disclosure(&buckets, k)?;
        let neg = negation_max_disclosure(&buckets, k)?;
        let witness = imp
            .witness
            .knowledge()
            .implications()
            .iter()
            .map(|i| symbols.display_implication(i))
            .collect::<Vec<_>>()
            .join(" ; ");
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", imp.value),
            format!("{:.4}", neg.value),
            if witness.is_empty() {
                "(none)".to_owned()
            } else {
                witness
            },
        ]);
    }
    print_aligned(&mut std::io::stdout(), &header, &rows)?;
    Ok(())
}
