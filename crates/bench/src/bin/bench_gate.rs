//! `bench_gate` — CI perf-regression gate over `bench_report` output.
//!
//! Gates a freshly measured `bench_report` run on its own **in-run ratios
//! between variants** — both sides of every ratio were measured in the same
//! run on the same machine, so absolute runner speed cancels out and no
//! committed ns/node baseline can go stale or trip on a slow runner. Fails
//! (exit 1) when any ratio falls below its floor, printing a markdown table
//! (optionally appended to a file — point `--summary` at
//! `$GITHUB_STEP_SUMMARY` to surface it in the CI job summary).
//!
//! Gated in-run ratios (speedup = slower variant ns/node ÷ faster):
//! * `sweep` — roll-up evaluator vs the legacy per-node scan on the
//!   unpruned sweep, floored by `--min-rollup` (default 2.0×);
//! * `search` — the same pair on the pruned search, same floor;
//! * `parallel` — work-stealing vs level-synchronous schedule, floored by
//!   `--min-steal` (default 0.67×: stealing may not be more than ~1.5×
//!   slower than level-sync in the same run).
//!
//! The JSON is the fixed shape `bench_report` emits; values are pulled with
//! a purpose-built extractor rather than a JSON dependency (the sanctioned
//! dependency set has none).
//!
//! Run: `cargo run --release -p wcbk-bench --bin bench_gate -- \
//!       /tmp/bench_new.json [--min-rollup F] [--min-steal F] \
//!       [--summary FILE]`
//!
//! A second mode, `--scale <candidate.json>`, gates the `bench_report
//! --scale` output on its own **in-run** speedups (machine-independent by
//! construction — both sides of each ratio were measured in the same run):
//! the chunked kernel must beat the row-at-a-time reference scan by
//! `--min-kernel` (default 1.2×) on one thread and by `--min-parallel`
//! (default 1.5×) at the run's thread count. No baseline file is needed.

use std::process::ExitCode;

use wcbk_bench::HarnessError;

/// Extracts `"key": <number>` from within `"section": { … }` of a
/// `bench_report` JSON document.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_tag = format!("\"{section}\"");
    let sec_start = json.find(&sec_tag)?;
    let body_start = json[sec_start..].find('{')? + sec_start + 1;
    let body_end = json[body_start..].find('}')? + body_start;
    let body = &json[body_start..body_end];
    let key_tag = format!("\"{key}\"");
    let key_start = body.find(&key_tag)?;
    let after_colon = body[key_start..].find(':')? + key_start + 1;
    let number: String = body[after_colon..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number.parse().ok()
}

/// In-run speedup of the faster variant over the slower one:
/// `slower ns/node ÷ faster ns/node` (infinite when the faster side
/// measured zero — nothing to gate against).
fn speedup(slower_ns: f64, faster_ns: f64) -> f64 {
    if faster_ns > 0.0 {
        slower_ns / faster_ns
    } else {
        f64::INFINITY
    }
}

/// `--scale` mode: gate `bench_report --scale` output on its own in-run
/// speedups. Both sides of each ratio came from the same run on the same
/// machine, so the floors hold anywhere the kernel is genuinely faster —
/// no committed baseline to go stale.
fn run_scale(args: &[String]) -> Result<bool, HarnessError> {
    let mut raw: Vec<String> = args.to_vec();
    let mut take_flag = |name: &str| -> Result<Option<String>, HarnessError> {
        match raw.iter().position(|a| a == name) {
            Some(pos) => {
                let value = raw
                    .get(pos + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone();
                raw.drain(pos..=pos + 1);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    };
    let min_kernel: f64 = take_flag("--min-kernel")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.2);
    let min_parallel: f64 = take_flag("--min-parallel")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.5);
    let summary_path = take_flag("--summary")?;
    let [candidate_path] = raw.as_slice() else {
        return Err("usage: bench_gate --scale <candidate.json> \
                    [--min-kernel F] [--min-parallel F] [--summary FILE]"
            .into());
    };
    let candidate = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("reading candidate {candidate_path}: {e}"))?;

    let mut rows: Vec<(String, f64, f64, bool)> = Vec::new();
    for (key, label, floor) in [
        (
            "kernel_speedup",
            "chunked kernel vs reference (1 thread)",
            min_kernel,
        ),
        (
            "parallel_speedup",
            "chunked kernel vs reference (parallel)",
            min_parallel,
        ),
    ] {
        let speedup = extract(&candidate, "bottom_scan", key)
            .ok_or_else(|| format!("candidate is missing bottom_scan.{key}"))?;
        rows.push((label.to_owned(), speedup, floor, speedup >= floor));
    }

    let mut table = String::from("## scale-gate: bottom-scan in-run speedups\n\n");
    table.push_str("| metric | speedup | floor | status |\n|---|---:|---:|:---:|\n");
    for (label, speedup, floor, passed) in &rows {
        table.push_str(&format!(
            "| {} | {:.2}x | {:.2}x | {} |\n",
            label,
            speedup,
            floor,
            if *passed { "pass" } else { "**FAIL**" }
        ));
    }
    println!("{table}");
    if let Some(path) = summary_path {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening summary {path}: {e}"))?;
        writeln!(f, "{table}")?;
    }
    let mut ok = true;
    for (label, speedup, floor, passed) in &rows {
        if !passed {
            ok = false;
            eprintln!("REGRESSION: {label} speedup {speedup:.2}x below the {floor:.2}x floor");
        }
    }
    Ok(ok)
}

fn run(args: &[String]) -> Result<bool, HarnessError> {
    let mut raw: Vec<String> = args.to_vec();
    if let Some(pos) = raw.iter().position(|a| a == "--scale") {
        raw.remove(pos);
        return run_scale(&raw);
    }
    let mut take_flag = |name: &str| -> Result<Option<String>, HarnessError> {
        match raw.iter().position(|a| a == name) {
            Some(pos) => {
                let value = raw
                    .get(pos + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone();
                raw.drain(pos..=pos + 1);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    };
    let min_rollup: f64 = take_flag("--min-rollup")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2.0);
    let min_steal: f64 = take_flag("--min-steal")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.67);
    let summary_path = take_flag("--summary")?;
    let [candidate_path] = raw.as_slice() else {
        return Err("usage: bench_gate <candidate.json> \
                    [--min-rollup F] [--min-steal F] [--summary FILE]"
            .into());
    };
    let candidate = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("reading candidate {candidate_path}: {e}"))?;

    // (label, measured in-run speedup, floor, verdict)
    let mut rows: Vec<(String, f64, f64, bool)> = Vec::new();
    for (section, label) in [
        ("sweep", "sweep: rollup vs legacy"),
        ("search", "pruned search: rollup vs legacy"),
    ] {
        let legacy = extract(&candidate, section, "legacy_ns_per_node")
            .ok_or_else(|| format!("candidate is missing {section}.legacy_ns_per_node"))?;
        let rollup = extract(&candidate, section, "rollup_ns_per_node")
            .ok_or_else(|| format!("candidate is missing {section}.rollup_ns_per_node"))?;
        let s = speedup(legacy, rollup);
        rows.push((label.to_owned(), s, min_rollup, s >= min_rollup));
    }
    let level = extract(&candidate, "parallel", "level_ns_per_node")
        .ok_or("candidate is missing parallel.level_ns_per_node")?;
    let steal = extract(&candidate, "parallel", "steal_ns_per_node")
        .ok_or("candidate is missing parallel.steal_ns_per_node")?;
    let s = speedup(level, steal);
    rows.push((
        "parallel: steal vs level".to_owned(),
        s,
        min_steal,
        s >= min_steal,
    ));

    let mut table = String::from("## bench-gate: lattice-search in-run variant speedups\n\n");
    table.push_str("| metric | speedup | floor | status |\n|---|---:|---:|:---:|\n");
    for (label, speedup, floor, passed) in &rows {
        table.push_str(&format!(
            "| {} | {:.2}x | {:.2}x | {} |\n",
            label,
            speedup,
            floor,
            if *passed { "pass" } else { "**FAIL**" }
        ));
    }
    println!("{table}");
    if let Some(path) = summary_path {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening summary {path}: {e}"))?;
        writeln!(f, "{table}")?;
    }
    let mut ok = true;
    for (label, speedup, floor, passed) in &rows {
        if !passed {
            ok = false;
            eprintln!("REGRESSION: {label} speedup {speedup:.2}x below the {floor:.2}x floor");
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "workload": { "rows": 5000, "lattice_nodes": 72, "c": 0.8, "k": 3 },
  "sweep": { "nodes_evaluated": 72, "legacy_ns_per_node": 624134, "rollup_ns_per_node": 109300, "speedup": 5.71 },
  "search": { "nodes_evaluated": 63, "minimal_nodes": 5, "legacy_ms": 38.932, "rollup_ms": 7.303, "legacy_ns_per_node": 617968, "rollup_ns_per_node": 115915, "speedup": 5.33 },
  "parallel": { "threads": 4, "level_ms": 2.5, "steal_ms": 2.0, "level_ns_per_node": 39683, "steal_ns_per_node": 31746, "steal_speedup_vs_level": 1.25 },
  "rollup": { "table_scans": 1, "derived_nodes": 71, "bottom_groups": 980 },
  "engine_cache": { "hits": 1093, "misses": 267, "entries": 267, "hit_rate": 0.8037 }
}"#;

    #[test]
    fn extracts_scoped_keys() {
        assert_eq!(
            extract(SAMPLE, "sweep", "rollup_ns_per_node"),
            Some(109300.0)
        );
        assert_eq!(
            extract(SAMPLE, "search", "rollup_ns_per_node"),
            Some(115915.0)
        );
        assert_eq!(
            extract(SAMPLE, "parallel", "steal_ns_per_node"),
            Some(31746.0)
        );
        assert_eq!(extract(SAMPLE, "search", "rollup_ms"), Some(7.303));
        assert_eq!(extract(SAMPLE, "engine_cache", "hit_rate"), Some(0.8037));
        // Keys do not leak across section boundaries.
        assert_eq!(extract(SAMPLE, "rollup", "rollup_ns_per_node"), None);
        assert_eq!(extract(SAMPLE, "nonexistent", "speedup"), None);
    }

    #[test]
    fn speedup_is_slower_over_faster_and_guards_zero() {
        assert!((speedup(100.0, 50.0) - 2.0).abs() < 1e-12);
        assert!(speedup(100.0, 0.0).is_infinite());
    }

    #[test]
    fn run_gates_on_in_run_ratios() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate");
        std::fs::create_dir_all(&dir).unwrap();
        let cand = dir.join("cand.json");
        std::fs::write(&cand, SAMPLE).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [cand.to_str().unwrap()]
                .iter()
                .map(|s| (*s).to_owned())
                .chain(extra.iter().map(|s| (*s).to_owned()))
                .collect()
        };
        // Sample speedups: sweep 5.71x, search 5.33x, steal-vs-level 1.25x.
        assert!(run(&args(&[])).unwrap(), "healthy ratios pass the defaults");

        // Roll-up regressed to parity with the legacy scan: fails the floor.
        let regressed = SAMPLE.replace(
            "\"rollup_ns_per_node\": 115915",
            "\"rollup_ns_per_node\": 617968",
        );
        std::fs::write(&cand, regressed).unwrap();
        assert!(!run(&args(&[])).unwrap(), "parity must fail --min-rollup");
        assert!(
            run(&args(&["--min-rollup", "1.0"])).unwrap(),
            "parity passes a 1.0x floor"
        );

        // Stealing collapsing to 2x slower than level-sync fails its floor.
        let slow_steal = SAMPLE.replace(
            "\"steal_ns_per_node\": 31746",
            "\"steal_ns_per_node\": 79366",
        );
        std::fs::write(&cand, slow_steal).unwrap();
        assert!(!run(&args(&[])).unwrap(), "slow stealing must fail");

        // A summary file gets the markdown appended.
        std::fs::write(&cand, SAMPLE).unwrap();
        let summary = dir.join("summary.md");
        let _ = std::fs::remove_file(&summary);
        assert!(run(&args(&["--summary", summary.to_str().unwrap()])).unwrap());
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("bench-gate"), "{text}");
        assert!(text.contains("| sweep: rollup vs legacy |"), "{text}");
    }

    const SCALE_SAMPLE: &str = r#"{
  "workload": { "rows": 1000000, "lattice_nodes": 72, "bottom_groups": 4153, "scan_threads": 4 },
  "bottom_scan": { "reference_ms": 55.0, "kernel_ms": 12.2, "parallel_ms": 14.8, "reference_rows_per_s": 18155209, "kernel_rows_per_s": 82273263, "parallel_rows_per_s": 67354663, "kernel_speedup": 4.53, "parallel_speedup": 3.71 }
}"#;

    #[test]
    fn scale_gate_checks_in_run_speedup_floors() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate_scale");
        std::fs::create_dir_all(&dir).unwrap();
        let cand = dir.join("scale.json");
        std::fs::write(&cand, SCALE_SAMPLE).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            ["--scale", cand.to_str().unwrap()]
                .iter()
                .map(|s| (*s).to_owned())
                .chain(extra.iter().map(|s| (*s).to_owned()))
                .collect()
        };
        assert!(
            run(&args(&[])).unwrap(),
            "healthy speedups pass the defaults"
        );
        assert!(
            run(&args(&["--min-kernel", "1.5", "--min-parallel", "3.0"])).unwrap(),
            "acceptance floors pass on the committed numbers"
        );
        assert!(
            !run(&args(&["--min-parallel", "5.0"])).unwrap(),
            "a floor above the measured speedup fails"
        );

        // A kernel regression to parity with the reference scan fails.
        let regressed = SCALE_SAMPLE
            .replace("\"kernel_speedup\": 4.53", "\"kernel_speedup\": 1.0")
            .replace("\"parallel_speedup\": 3.71", "\"parallel_speedup\": 1.0");
        std::fs::write(&cand, regressed).unwrap();
        assert!(!run(&args(&[])).unwrap(), "parity must fail the gate");

        // The summary file gets the scale table appended.
        std::fs::write(&cand, SCALE_SAMPLE).unwrap();
        let summary = dir.join("summary.md");
        let _ = std::fs::remove_file(&summary);
        assert!(run(&args(&["--summary", summary.to_str().unwrap()])).unwrap());
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("scale-gate"), "{text}");
    }

    #[test]
    fn missing_candidate_metric_is_fatal() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate_missing");
        std::fs::create_dir_all(&dir).unwrap();
        let cand = dir.join("cand.json");
        // A candidate without the parallel section cannot be gated.
        let truncated = SAMPLE
            .lines()
            .filter(|l| !l.contains("\"parallel\""))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&cand, truncated).unwrap();
        let args = vec![cand.to_str().unwrap().to_owned()];
        let err = run(&args).unwrap_err();
        assert!(
            err.to_string().contains("level_ns_per_node"),
            "unexpected error: {err}"
        );
    }
}
