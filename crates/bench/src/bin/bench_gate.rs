//! `bench_gate` — CI perf-regression gate over `bench_report` output.
//!
//! Compares a freshly measured `BENCH_search.json` against the committed
//! baseline and **fails (exit 1) when any gated ns/node metric regresses by
//! more than the allowed ratio**, printing a markdown comparison table
//! (optionally appended to a file — point `--summary` at
//! `$GITHUB_STEP_SUMMARY` to surface it in the CI job summary).
//!
//! Gated metrics (candidate ≤ baseline × ratio):
//! * `sweep.rollup_ns_per_node` — per-node cost of the unpruned sweep;
//! * `search.rollup_ns_per_node` — per-node cost of the pruned search;
//! * `parallel.steal_ns_per_node` — per-node cost of the 4-thread
//!   work-stealing search (skipped when the baseline predates the metric).
//!
//! One intra-run gate rides along: the work-stealing schedule must not be
//! more than the same ratio slower than the level-synchronous one measured
//! in the *candidate* run (machine-independent by construction).
//!
//! The JSON is the fixed shape `bench_report` emits; values are pulled with
//! a purpose-built extractor rather than a JSON dependency (the sanctioned
//! dependency set has none).
//!
//! Run: `cargo run --release -p wcbk-bench --bin bench_gate -- \
//!       results/BENCH_search.json /tmp/bench_new.json \
//!       [--max-ratio 1.5] [--summary FILE]`
//!
//! A second mode, `--scale <candidate.json>`, gates the `bench_report
//! --scale` output on its own **in-run** speedups (machine-independent by
//! construction — both sides of each ratio were measured in the same run):
//! the chunked kernel must beat the row-at-a-time reference scan by
//! `--min-kernel` (default 1.2×) on one thread and by `--min-parallel`
//! (default 1.5×) at the run's thread count. No baseline file is needed.

use std::process::ExitCode;

use wcbk_bench::HarnessError;

/// Extracts `"key": <number>` from within `"section": { … }` of a
/// `bench_report` JSON document.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_tag = format!("\"{section}\"");
    let sec_start = json.find(&sec_tag)?;
    let body_start = json[sec_start..].find('{')? + sec_start + 1;
    let body_end = json[body_start..].find('}')? + body_start;
    let body = &json[body_start..body_end];
    let key_tag = format!("\"{key}\"");
    let key_start = body.find(&key_tag)?;
    let after_colon = body[key_start..].find(':')? + key_start + 1;
    let number: String = body[after_colon..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number.parse().ok()
}

/// One gate row: a metric, both readings, the ratio, and the verdict.
struct GateRow {
    metric: String,
    baseline: f64,
    candidate: f64,
    ratio: f64,
    passed: bool,
}

impl GateRow {
    fn new(metric: &str, baseline: f64, candidate: f64, max_ratio: f64) -> Self {
        let ratio = if baseline > 0.0 {
            candidate / baseline
        } else {
            f64::INFINITY
        };
        Self {
            metric: metric.to_owned(),
            baseline,
            candidate,
            ratio,
            passed: ratio <= max_ratio,
        }
    }
}

fn markdown(rows: &[GateRow], max_ratio: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## bench-gate: lattice-search ns/node vs baseline (max ratio {max_ratio:.2})\n\n"
    ));
    out.push_str("| metric | baseline | candidate | ratio | status |\n");
    out.push_str("|---|---:|---:|---:|:---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.2} | {} |\n",
            r.metric,
            r.baseline,
            r.candidate,
            r.ratio,
            if r.passed { "pass" } else { "**FAIL**" }
        ));
    }
    out
}

/// `--scale` mode: gate `bench_report --scale` output on its own in-run
/// speedups. Both sides of each ratio came from the same run on the same
/// machine, so the floors hold anywhere the kernel is genuinely faster —
/// no committed baseline to go stale.
fn run_scale(args: &[String]) -> Result<bool, HarnessError> {
    let mut raw: Vec<String> = args.to_vec();
    let mut take_flag = |name: &str| -> Result<Option<String>, HarnessError> {
        match raw.iter().position(|a| a == name) {
            Some(pos) => {
                let value = raw
                    .get(pos + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone();
                raw.drain(pos..=pos + 1);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    };
    let min_kernel: f64 = take_flag("--min-kernel")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.2);
    let min_parallel: f64 = take_flag("--min-parallel")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.5);
    let summary_path = take_flag("--summary")?;
    let [candidate_path] = raw.as_slice() else {
        return Err("usage: bench_gate --scale <candidate.json> \
                    [--min-kernel F] [--min-parallel F] [--summary FILE]"
            .into());
    };
    let candidate = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("reading candidate {candidate_path}: {e}"))?;

    let mut rows: Vec<(String, f64, f64, bool)> = Vec::new();
    for (key, label, floor) in [
        (
            "kernel_speedup",
            "chunked kernel vs reference (1 thread)",
            min_kernel,
        ),
        (
            "parallel_speedup",
            "chunked kernel vs reference (parallel)",
            min_parallel,
        ),
    ] {
        let speedup = extract(&candidate, "bottom_scan", key)
            .ok_or_else(|| format!("candidate is missing bottom_scan.{key}"))?;
        rows.push((label.to_owned(), speedup, floor, speedup >= floor));
    }

    let mut table = String::from("## scale-gate: bottom-scan in-run speedups\n\n");
    table.push_str("| metric | speedup | floor | status |\n|---|---:|---:|:---:|\n");
    for (label, speedup, floor, passed) in &rows {
        table.push_str(&format!(
            "| {} | {:.2}x | {:.2}x | {} |\n",
            label,
            speedup,
            floor,
            if *passed { "pass" } else { "**FAIL**" }
        ));
    }
    println!("{table}");
    if let Some(path) = summary_path {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening summary {path}: {e}"))?;
        writeln!(f, "{table}")?;
    }
    let mut ok = true;
    for (label, speedup, floor, passed) in &rows {
        if !passed {
            ok = false;
            eprintln!("REGRESSION: {label} speedup {speedup:.2}x below the {floor:.2}x floor");
        }
    }
    Ok(ok)
}

fn run(args: &[String]) -> Result<bool, HarnessError> {
    let mut raw: Vec<String> = args.to_vec();
    if let Some(pos) = raw.iter().position(|a| a == "--scale") {
        raw.remove(pos);
        return run_scale(&raw);
    }
    let mut take_flag = |name: &str| -> Result<Option<String>, HarnessError> {
        match raw.iter().position(|a| a == name) {
            Some(pos) => {
                let value = raw
                    .get(pos + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone();
                raw.drain(pos..=pos + 1);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    };
    let max_ratio: f64 = take_flag("--max-ratio")?
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.5);
    let summary_path = take_flag("--summary")?;
    let [baseline_path, candidate_path] = raw.as_slice() else {
        return Err("usage: bench_gate <baseline.json> <candidate.json> \
                    [--max-ratio F] [--summary FILE]"
            .into());
    };
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
    let candidate = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("reading candidate {candidate_path}: {e}"))?;

    let mut rows: Vec<GateRow> = Vec::new();
    for (section, key, label) in [
        ("sweep", "rollup_ns_per_node", "sweep rollup ns/node"),
        (
            "search",
            "rollup_ns_per_node",
            "pruned-search rollup ns/node",
        ),
        ("parallel", "steal_ns_per_node", "4-thread steal ns/node"),
    ] {
        let cand = extract(&candidate, section, key)
            .ok_or_else(|| format!("candidate is missing {section}.{key}"))?;
        match extract(&baseline, section, key) {
            Some(base) => rows.push(GateRow::new(label, base, cand, max_ratio)),
            // A baseline from before the metric existed: nothing to gate.
            None => eprintln!("note: baseline has no {section}.{key}; skipping that gate"),
        }
    }
    // Intra-run gate: stealing must keep up with level-sync on the same
    // machine, same run.
    let level = extract(&candidate, "parallel", "level_ns_per_node")
        .ok_or("candidate is missing parallel.level_ns_per_node")?;
    let steal = extract(&candidate, "parallel", "steal_ns_per_node")
        .ok_or("candidate is missing parallel.steal_ns_per_node")?;
    rows.push(GateRow::new(
        "steal vs level (same run)",
        level,
        steal,
        max_ratio,
    ));

    let table = markdown(&rows, max_ratio);
    println!("{table}");
    if let Some(path) = summary_path {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening summary {path}: {e}"))?;
        writeln!(f, "{table}")?;
    }
    let failed: Vec<&GateRow> = rows.iter().filter(|r| !r.passed).collect();
    for r in &failed {
        eprintln!(
            "REGRESSION: {} went {:.0} -> {:.0} ns/node ({:.2}x > {max_ratio:.2}x allowed)",
            r.metric, r.baseline, r.candidate, r.ratio
        );
    }
    Ok(failed.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "workload": { "rows": 5000, "lattice_nodes": 72, "c": 0.8, "k": 3 },
  "sweep": { "nodes_evaluated": 72, "legacy_ns_per_node": 624134, "rollup_ns_per_node": 109300, "speedup": 5.71 },
  "search": { "nodes_evaluated": 63, "minimal_nodes": 5, "legacy_ms": 38.932, "rollup_ms": 7.303, "legacy_ns_per_node": 617968, "rollup_ns_per_node": 115915, "speedup": 5.33 },
  "parallel": { "threads": 4, "level_ms": 2.5, "steal_ms": 2.0, "level_ns_per_node": 39683, "steal_ns_per_node": 31746, "steal_speedup_vs_level": 1.25 },
  "rollup": { "table_scans": 1, "derived_nodes": 71, "bottom_groups": 980 },
  "engine_cache": { "hits": 1093, "misses": 267, "entries": 267, "hit_rate": 0.8037 }
}"#;

    #[test]
    fn extracts_scoped_keys() {
        assert_eq!(
            extract(SAMPLE, "sweep", "rollup_ns_per_node"),
            Some(109300.0)
        );
        assert_eq!(
            extract(SAMPLE, "search", "rollup_ns_per_node"),
            Some(115915.0)
        );
        assert_eq!(
            extract(SAMPLE, "parallel", "steal_ns_per_node"),
            Some(31746.0)
        );
        assert_eq!(extract(SAMPLE, "search", "rollup_ms"), Some(7.303));
        assert_eq!(extract(SAMPLE, "engine_cache", "hit_rate"), Some(0.8037));
        // Keys do not leak across section boundaries.
        assert_eq!(extract(SAMPLE, "rollup", "rollup_ns_per_node"), None);
        assert_eq!(extract(SAMPLE, "nonexistent", "speedup"), None);
    }

    #[test]
    fn gate_rows_compare_against_ratio() {
        let pass = GateRow::new("m", 100.0, 149.0, 1.5);
        assert!(pass.passed);
        let fail = GateRow::new("m", 100.0, 151.0, 1.5);
        assert!(!fail.passed);
        let degenerate = GateRow::new("m", 0.0, 1.0, 1.5);
        assert!(!degenerate.passed);
    }

    #[test]
    fn run_passes_identical_files_and_fails_regressions() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, SAMPLE).unwrap();
        std::fs::write(&cand, SAMPLE).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [base.to_str().unwrap(), cand.to_str().unwrap()]
                .iter()
                .map(|s| (*s).to_owned())
                .chain(extra.iter().map(|s| (*s).to_owned()))
                .collect()
        };
        assert!(run(&args(&[])).unwrap(), "identical files must pass");

        // Regress the candidate's search ns/node 2x: must fail at 1.5.
        let regressed = SAMPLE.replace(
            "\"rollup_ns_per_node\": 115915",
            "\"rollup_ns_per_node\": 231830",
        );
        std::fs::write(&cand, regressed).unwrap();
        assert!(!run(&args(&[])).unwrap(), "2x regression must fail");
        assert!(
            run(&args(&["--max-ratio", "2.5"])).unwrap(),
            "2x regression passes a 2.5x gate"
        );

        // A summary file gets the markdown appended.
        std::fs::write(&cand, SAMPLE).unwrap();
        let summary = dir.join("summary.md");
        let _ = std::fs::remove_file(&summary);
        let mut with_summary = args(&[]);
        with_summary.extend(["--summary".to_owned(), summary.to_str().unwrap().to_owned()]);
        assert!(run(&with_summary).unwrap());
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("bench-gate"), "{text}");
        assert!(text.contains("| sweep rollup ns/node |"), "{text}");
    }

    const SCALE_SAMPLE: &str = r#"{
  "workload": { "rows": 1000000, "lattice_nodes": 72, "bottom_groups": 4153, "scan_threads": 4 },
  "bottom_scan": { "reference_ms": 55.0, "kernel_ms": 12.2, "parallel_ms": 14.8, "reference_rows_per_s": 18155209, "kernel_rows_per_s": 82273263, "parallel_rows_per_s": 67354663, "kernel_speedup": 4.53, "parallel_speedup": 3.71 }
}"#;

    #[test]
    fn scale_gate_checks_in_run_speedup_floors() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate_scale");
        std::fs::create_dir_all(&dir).unwrap();
        let cand = dir.join("scale.json");
        std::fs::write(&cand, SCALE_SAMPLE).unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            ["--scale", cand.to_str().unwrap()]
                .iter()
                .map(|s| (*s).to_owned())
                .chain(extra.iter().map(|s| (*s).to_owned()))
                .collect()
        };
        assert!(
            run(&args(&[])).unwrap(),
            "healthy speedups pass the defaults"
        );
        assert!(
            run(&args(&["--min-kernel", "1.5", "--min-parallel", "3.0"])).unwrap(),
            "acceptance floors pass on the committed numbers"
        );
        assert!(
            !run(&args(&["--min-parallel", "5.0"])).unwrap(),
            "a floor above the measured speedup fails"
        );

        // A kernel regression to parity with the reference scan fails.
        let regressed = SCALE_SAMPLE
            .replace("\"kernel_speedup\": 4.53", "\"kernel_speedup\": 1.0")
            .replace("\"parallel_speedup\": 3.71", "\"parallel_speedup\": 1.0");
        std::fs::write(&cand, regressed).unwrap();
        assert!(!run(&args(&[])).unwrap(), "parity must fail the gate");

        // The summary file gets the scale table appended.
        std::fs::write(&cand, SCALE_SAMPLE).unwrap();
        let summary = dir.join("summary.md");
        let _ = std::fs::remove_file(&summary);
        assert!(run(&args(&["--summary", summary.to_str().unwrap()])).unwrap());
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("scale-gate"), "{text}");
    }

    #[test]
    fn missing_baseline_metric_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("wcbk_bench_gate_skip");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        // A baseline from before the parallel section existed.
        let old = SAMPLE
            .lines()
            .filter(|l| !l.contains("\"parallel\""))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&base, old).unwrap();
        std::fs::write(&cand, SAMPLE).unwrap();
        let args: Vec<String> = [base.to_str().unwrap(), cand.to_str().unwrap()]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run(&args).unwrap());
    }
}
