//! `load_gen` — closed-loop load generator for `wcbk serve`.
//!
//! Drives `--connections` persistent connections against a running server,
//! each posting `--requests` `/batch` calls of `--tables` synthetic Adult
//! tables (alternating `audit` and `search` jobs), reads the streamed
//! NDJSON responses, and reports throughput plus latency percentiles into
//! `results/BENCH_serve.json` so successive PRs can track the serving
//! trajectory.
//!
//! With `--handles`, a second phase measures the **dataset-handle** path on
//! the same re-audit workload: every table is registered once via
//! `POST /tables` (one scan each), then the same connections fan
//! (c,k)-audit/search jobs over `POST /tables/{id}/batch` — no CSV upload,
//! no re-parse, no re-scan. The handle-vs-oneshot throughput ratio lands in
//! the report, and `--min-handle-ratio` turns it into a CI gate.
//!
//! Closed loop: each connection issues its next batch only after fully
//! consuming the previous response, so offered load adapts to the server
//! (this measures capacity, not queueing collapse).
//!
//! With `--conn-scale N`, a third phase measures **connection scaling** on
//! the evented server: the same fixed total request rate of cheap handle
//! audits is offered first over 8 connections, then spread across `N`
//! keep-alive connections (optionally with `--slowloris M` stalled
//! connections trickling partial headers alongside). On a reactor, idle
//! keep-alive connections cost ~0, so p99 at `N` connections should stay
//! close to p99 at 8; `--max-p99-ratio` turns that into a CI gate. (The
//! phase is a *paced open loop* — a closed loop's per-connection latency
//! trivially scales with the connection count and would measure nothing.)
//!
//! Exits non-zero when any request fails, any table errors, throughput
//! falls below `--min-throughput` tables/sec, the handle ratio falls
//! below `--min-handle-ratio`, or the conn-scale p99 ratio exceeds
//! `--max-p99-ratio` — making it usable directly as the CI `serve-smoke`
//! gate.
//!
//! Run: `cargo run --release -p wcbk-bench --bin load_gen -- \
//!       [--addr HOST:PORT] [--connections N] [--requests N] [--tables N] \
//!       [--rows N] [--out FILE] [--min-throughput F] [--handles] \
//!       [--min-handle-ratio F] [--conn-scale N] [--slowloris N] \
//!       [--max-p99-ratio F] [--shutdown] [--wait-ms N]`

use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wcbk_bench::{small_adult, HarnessError};
use wcbk_serve::http::client::Client;
use wcbk_serve::json::Json;

struct Config {
    addr: String,
    connections: usize,
    requests: usize,
    tables: usize,
    rows: usize,
    out: String,
    min_throughput: f64,
    handles: bool,
    min_handle_ratio: f64,
    conn_scale: usize,
    slowloris: usize,
    max_p99_ratio: f64,
    shutdown: bool,
    wait_ms: u64,
}

fn parse_args(args: &[String]) -> Result<Config, HarnessError> {
    let mut config = Config {
        addr: "127.0.0.1:8080".to_owned(),
        connections: 8,
        requests: 4,
        tables: 32,
        rows: 500,
        out: "results/BENCH_serve.json".to_owned(),
        min_throughput: 0.0,
        handles: false,
        min_handle_ratio: 0.0,
        conn_scale: 0,
        slowloris: 0,
        max_p99_ratio: 0.0,
        shutdown: false,
        wait_ms: 15_000,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, HarnessError> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match flag.as_str() {
            "--addr" => config.addr = value()?.clone(),
            "--connections" => config.connections = value()?.parse()?,
            "--requests" => config.requests = value()?.parse()?,
            "--tables" => config.tables = value()?.parse()?,
            "--rows" => config.rows = value()?.parse()?,
            "--out" => config.out = value()?.clone(),
            "--min-throughput" => config.min_throughput = value()?.parse()?,
            "--handles" => config.handles = true,
            "--min-handle-ratio" => config.min_handle_ratio = value()?.parse()?,
            "--conn-scale" => config.conn_scale = value()?.parse()?,
            "--slowloris" => config.slowloris = value()?.parse()?,
            "--max-p99-ratio" => config.max_p99_ratio = value()?.parse()?,
            "--shutdown" => config.shutdown = true,
            "--wait-ms" => config.wait_ms = value()?.parse()?,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if config.connections == 0 || config.requests == 0 || config.tables == 0 {
        return Err("--connections/--requests/--tables must be positive".into());
    }
    Ok(config)
}

/// Synthesizes batch job `i`: a distinct small Adult table (row count varies
/// with `i`, so tables differ while sharing histogram shapes — the
/// cross-request cache case), alternating audit and search ops.
fn build_job(i: usize, base_rows: usize) -> Result<Json, HarnessError> {
    let table = small_adult(base_rows + i);
    let mut csv = Vec::new();
    wcbk_table::csv::write_table(&mut csv, &table)?;
    let csv = String::from_utf8(csv).map_err(|_| "non-UTF-8 CSV")?;
    let job = if i % 2 == 0 {
        Json::object(vec![
            ("op", "audit".into()),
            ("csv", csv.into()),
            ("sensitive", "Occupation".into()),
            ("qi", Json::Array(vec!["Age".into(), "Gender".into()])),
            ("k", 3u64.into()),
            ("c", 0.8.into()),
        ])
    } else {
        Json::object(vec![
            ("op", "search".into()),
            ("csv", csv.into()),
            ("sensitive", "Occupation".into()),
            ("qi", Json::Array(vec!["Age".into(), "Gender".into()])),
            (
                "hierarchy",
                Json::object(vec![("Age", Json::Array(vec![5u64.into(), 10u64.into()]))]),
            ),
            ("k", 3u64.into()),
            ("c", 0.8.into()),
            ("threads", 2u64.into()),
            ("schedule", "steal".into()),
        ])
    };
    Ok(job)
}

/// Polls `/healthz` until the server answers or the budget runs out.
fn await_healthy(addr: &str, budget: Duration) -> Result<(), HarnessError> {
    let deadline = Instant::now() + budget;
    loop {
        if let Ok(mut client) = Client::connect(addr, Some(Duration::from_secs(2))) {
            if let Ok(response) = client.get("/healthz") {
                if response.status == 200 {
                    return Ok(());
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("server at {addr} not healthy within {budget:?}").into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One measured closed-loop phase.
struct Phase {
    /// Batches that completed cleanly (== samples recorded).
    batches: usize,
    wall_ms: f64,
    /// Per-batch latencies, sorted ascending.
    samples: Vec<f64>,
    failures: Vec<String>,
}

/// The closed loop: `connections` workers × `requests` posts each, the
/// target chosen per request by `target(worker, request)` → (path, body).
/// Every response must stream `tables + 1` NDJSON lines (results + summary)
/// with no embedded errors.
fn drive<F>(config: &Config, target: F) -> Phase
where
    F: Fn(usize, usize) -> (String, String) + Sync,
{
    let samples: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        let target = &target;
        for worker in 0..config.connections {
            let samples = &samples;
            let failures = &failures;
            scope.spawn(move || {
                let fail = |message: String| {
                    failures
                        .lock()
                        .expect("failure list poisoned")
                        .push(format!("connection {worker}: {message}"));
                };
                let mut client = match Client::connect(&config.addr, Some(Duration::from_secs(120)))
                {
                    Ok(c) => c,
                    Err(e) => return fail(format!("connect: {e}")),
                };
                for request in 0..config.requests {
                    let (path, body) = target(worker, request);
                    let sent = Instant::now();
                    let response = match client.post(&path, &body) {
                        Ok(r) => r,
                        Err(e) => return fail(format!("request {request}: {e}")),
                    };
                    let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
                    if response.status != 200 {
                        return fail(format!("request {request}: HTTP {}", response.status));
                    }
                    let lines = match response.ndjson() {
                        Ok(lines) => lines,
                        Err(e) => return fail(format!("request {request}: {e}")),
                    };
                    if lines.len() != config.tables + 1 {
                        return fail(format!(
                            "request {request}: {} lines, expected {}",
                            lines.len(),
                            config.tables + 1
                        ));
                    }
                    for line in &lines[..config.tables] {
                        if let Some(error) = line.get("error").and_then(Json::as_str) {
                            return fail(format!("request {request}: table error: {error}"));
                        }
                    }
                    samples
                        .lock()
                        .expect("sample list poisoned")
                        .push(elapsed_ms);
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let failures = failures.into_inner().expect("failure list poisoned");
    for f in &failures {
        eprintln!("FAILURE: {f}");
    }
    let mut samples = samples.into_inner().expect("sample list poisoned");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Phase {
        batches: samples.len(),
        wall_ms,
        samples,
        failures,
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[rank]
}

/// Estimates quantiles of the server-side `wcbk_http_request_micros`
/// histogram from a Prometheus `/metrics` exposition. Bucket counts are
/// summed across endpoint labels (cumulative buckets stay cumulative under
/// addition), then each quantile is linearly interpolated inside its
/// bucket — the same estimate `histogram_quantile()` would give. Returns
/// `(p50, p90, p99)` in milliseconds, or `None` if the series is absent
/// or empty.
fn scrape_server_quantiles(exposition: &str) -> Option<(f64, f64, f64)> {
    let mut buckets: Vec<(f64, f64)> = Vec::new(); // (upper bound µs, cumulative count)
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix("wcbk_http_request_micros_bucket{") else {
            continue;
        };
        let parsed = (|| {
            let le_start = rest.find("le=\"")? + 4;
            let le_end = le_start + rest[le_start..].find('"')?;
            let le = match &rest[le_start..le_end] {
                "+Inf" => f64::INFINITY,
                bound => bound.parse().ok()?,
            };
            let count: f64 = rest.rsplit_once(' ')?.1.parse().ok()?;
            Some((le, count))
        })();
        if let Some((le, count)) = parsed {
            match buckets.iter_mut().find(|(bound, _)| *bound == le) {
                Some((_, total)) => *total += count,
                None => buckets.push((le, count)),
            }
        }
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().map(|&(_, count)| count)?;
    if total <= 0.0 {
        return None;
    }
    let quantile = |q: f64| -> f64 {
        let rank = q * total;
        let mut previous = (0.0, 0.0);
        for &(bound, cumulative) in &buckets {
            if cumulative >= rank {
                if bound.is_infinite() {
                    return previous.0 / 1e3;
                }
                let in_bucket = cumulative - previous.1;
                let fraction = if in_bucket > 0.0 {
                    (rank - previous.1) / in_bucket
                } else {
                    1.0
                };
                return (previous.0 + (bound - previous.0) * fraction) / 1e3;
            }
            previous = (bound, cumulative);
        }
        previous.0 / 1e3
    };
    Some((quantile(0.50), quantile(0.90), quantile(0.99)))
}

/// Baseline connection count the conn-scale phase compares against.
const SCALE_BASELINE_CONNS: usize = 8;
/// Total requests offered per conn-scale measurement (same at both counts).
const SCALE_TOTAL_REQUESTS: usize = 768;
/// Aggregate offered rate (requests/sec) across all connections — well
/// under the capacity of a warm handle audit, so queueing reflects the
/// connection count, not saturation.
const SCALE_RATE_PER_SEC: f64 = 160.0;

/// One paced open-loop measurement.
struct ScalePhase {
    samples: Vec<f64>,
    wall_ms: f64,
    failures: Vec<String>,
}

/// Offers `SCALE_TOTAL_REQUESTS` posts of `body` to `path` at a fixed
/// aggregate `SCALE_RATE_PER_SEC`, spread evenly over `connections`
/// keep-alive connections (send times are scheduled on the clock, not on
/// the previous response — an open loop). Returns sorted latencies.
fn drive_open_loop(addr: &str, path: &str, body: &str, connections: usize) -> ScalePhase {
    let samples: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..connections {
            let samples = &samples;
            let failures = &failures;
            scope.spawn(move || {
                let fail = |message: String| {
                    failures
                        .lock()
                        .expect("failure list poisoned")
                        .push(format!("scale connection {worker}: {message}"));
                };
                let count = SCALE_TOTAL_REQUESTS / connections
                    + usize::from(worker < SCALE_TOTAL_REQUESTS % connections);
                let mut client = match Client::connect(addr, Some(Duration::from_secs(120))) {
                    Ok(c) => c,
                    Err(e) => return fail(format!("connect: {e}")),
                };
                for i in 0..count {
                    // Worker w fires at t0 + (w + i*connections)/rate: the
                    // aggregate arrival process is a steady rate/sec comb
                    // regardless of how many connections share it.
                    let due = started
                        + Duration::from_secs_f64(
                            (worker + i * connections) as f64 / SCALE_RATE_PER_SEC,
                        );
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    match client.post(path, body) {
                        Ok(r) if r.status == 200 => {
                            let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
                            samples
                                .lock()
                                .expect("sample list poisoned")
                                .push(elapsed_ms);
                        }
                        Ok(r) => return fail(format!("request {i}: HTTP {}", r.status)),
                        Err(e) => return fail(format!("request {i}: {e}")),
                    }
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let failures = failures.into_inner().expect("failure list poisoned");
    for f in &failures {
        eprintln!("FAILURE: {f}");
    }
    let mut samples = samples.into_inner().expect("sample list poisoned");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ScalePhase {
        samples,
        wall_ms,
        failures,
    }
}

/// The conn-scale phase: registers one handle, measures p99 of the same
/// offered load over `SCALE_BASELINE_CONNS` and then `config.conn_scale`
/// connections (with `config.slowloris` stalled connections trickling
/// partial headers alongside the scaled run), and reports the ratio.
/// Returns `(report_section, ratio, failure_count)`.
fn run_conn_scale(config: &Config) -> Result<(Json, f64, usize), HarnessError> {
    use std::io::Write as _;

    // One small handle; its audits are warm after the first few, so each
    // request is cheap and the measurement isolates connection overhead.
    let table = small_adult(200);
    let mut csv = Vec::new();
    wcbk_table::csv::write_table(&mut csv, &table)?;
    let register = Json::object(vec![
        (
            "csv",
            String::from_utf8(csv).map_err(|_| "non-UTF-8 CSV")?.into(),
        ),
        ("sensitive", "Occupation".into()),
        ("qi", Json::Array(vec!["Age".into(), "Gender".into()])),
    ]);
    let mut client = Client::connect(&config.addr, Some(Duration::from_secs(120)))?;
    let response = client.post("/tables", &register.to_string())?;
    if response.status != 200 {
        return Err(format!("conn-scale register: HTTP {}", response.status).into());
    }
    let id = response
        .json()?
        .get("id")
        .and_then(Json::as_str)
        .ok_or("register response lacks an id")?
        .to_owned();
    let path = format!("/tables/{id}/audit");
    let body = Json::object(vec![("k", 3u64.into()), ("c", 0.8.into())]).to_string();
    // Warm the memo so neither measurement pays the first-audit scan.
    for _ in 0..4 {
        let r = client.post(&path, &body)?;
        if r.status != 200 {
            return Err(format!("conn-scale warmup: HTTP {}", r.status).into());
        }
    }
    drop(client);

    eprintln!(
        "conn-scale: {} requests at {:.0}/s over {} connections…",
        SCALE_TOTAL_REQUESTS, SCALE_RATE_PER_SEC, SCALE_BASELINE_CONNS
    );
    let baseline = drive_open_loop(&config.addr, &path, &body, SCALE_BASELINE_CONNS);

    // The scaled run, with stalled header-tricklers riding alongside: on
    // the evented server they occupy reactor entries, never workers.
    let tricklers: Vec<std::net::TcpStream> = (0..config.slowloris)
        .filter_map(|_| {
            let mut s = std::net::TcpStream::connect(&config.addr).ok()?;
            s.write_all(b"POST /audit HT").ok()?;
            Some(s)
        })
        .collect();
    eprintln!(
        "conn-scale: same load over {} connections (+{} slowloris)…",
        config.conn_scale,
        tricklers.len()
    );
    let scaled = drive_open_loop(&config.addr, &path, &body, config.conn_scale);
    drop(tricklers);

    let p99_base = percentile(&baseline.samples, 0.99);
    let p99_scaled = percentile(&scaled.samples, 0.99);
    // Sub-millisecond baselines make the ratio a noise amplifier; floor
    // the denominator at 1 ms so the gate measures regressions, not timer
    // jitter.
    let ratio = p99_scaled / p99_base.max(1.0);
    let failures = baseline.failures.len()
        + scaled.failures.len()
        + (baseline.samples.len() != SCALE_TOTAL_REQUESTS) as usize
        + (scaled.samples.len() != SCALE_TOTAL_REQUESTS) as usize;
    let section = Json::object(vec![
        ("baseline_connections", SCALE_BASELINE_CONNS.into()),
        ("scaled_connections", config.conn_scale.into()),
        ("slowloris", config.slowloris.into()),
        ("requests_per_run", SCALE_TOTAL_REQUESTS.into()),
        ("offered_rate_per_sec", SCALE_RATE_PER_SEC.into()),
        (
            "baseline",
            Json::object(vec![
                ("p50", percentile(&baseline.samples, 0.50).into()),
                ("p99", p99_base.into()),
                ("wall_ms", baseline.wall_ms.into()),
            ]),
        ),
        (
            "scaled",
            Json::object(vec![
                ("p50", percentile(&scaled.samples, 0.50).into()),
                ("p99", p99_scaled.into()),
                ("wall_ms", scaled.wall_ms.into()),
            ]),
        ),
        ("p99_ratio", ratio.into()),
        ("failures", failures.into()),
    ]);
    eprintln!(
        "conn-scale: p99 {p99_base:.2} ms @ {SCALE_BASELINE_CONNS} conns -> {p99_scaled:.2} ms @ {} conns ({ratio:.2}x)",
        config.conn_scale
    );
    Ok((section, ratio, failures))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, HarnessError> {
    let config = parse_args(args)?;
    eprintln!(
        "load_gen: {} connections x {} requests x {} tables (rows >= {}) against {}",
        config.connections, config.requests, config.tables, config.rows, config.addr
    );

    eprintln!("building workload…");
    let jobs: Vec<Json> = (0..config.tables)
        .map(|i| build_job(i, config.rows))
        .collect::<Result<_, _>>()?;
    let batch = Json::object(vec![("tables", Json::Array(jobs))]).to_string();

    eprintln!("waiting for /healthz…");
    await_healthy(&config.addr, Duration::from_millis(config.wait_ms))?;

    // Phase 1: the one-shot workload (every job carries its CSV).
    let oneshot = drive(&config, |_, _| ("/batch".to_owned(), batch.clone()));
    let batches = oneshot.batches;
    let tables_done = batches * config.tables;
    let wall_ms = oneshot.wall_ms;
    let tables_per_sec = tables_done as f64 / (wall_ms / 1e3);
    let samples = oneshot.samples;
    let mean = if batches == 0 {
        0.0
    } else {
        samples.iter().sum::<f64>() / batches as f64
    };

    // Phase 2 (--handles): register every table once, then fan the same
    // job mix over /tables/{id}/batch — the re-audit workload with zero
    // parsing and zero scans.
    let mut handle_section = Json::Null;
    let mut handle_failures = 0usize;
    let mut handle_ratio: Option<f64> = None;
    if config.handles {
        eprintln!("registering {} handles…", config.tables);
        // The registration client lives in its own block: an idle
        // keep-alive connection would otherwise pin a server worker (up to
        // the read timeout) for the whole measured phase.
        let ids: Vec<String> = {
            let mut register = Client::connect(&config.addr, Some(Duration::from_secs(120)))?;
            let mut ids = Vec::with_capacity(config.tables);
            for i in 0..config.tables {
                let mut job = build_job(i, config.rows)?;
                if let Json::Object(pairs) = &mut job {
                    pairs.retain(|(k, _)| {
                        matches!(k.as_str(), "csv" | "sensitive" | "qi" | "hierarchy")
                    });
                    // Every handle gets the Age interval hierarchy, so
                    // handle-phase search jobs run the same lattices the
                    // one-shot search jobs do (build_job only attaches it
                    // to odd, search-op tables).
                    if !pairs.iter().any(|(k, _)| k == "hierarchy") {
                        pairs.push((
                            "hierarchy".to_owned(),
                            Json::object(vec![(
                                "Age",
                                Json::Array(vec![5u64.into(), 10u64.into()]),
                            )]),
                        ));
                    }
                }
                let response = register.post("/tables", &job.to_string())?;
                if response.status != 200 {
                    return Err(format!("register {i}: HTTP {}", response.status).into());
                }
                let id = response
                    .json()?
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("register response lacks an id")?
                    .to_owned();
                ids.push(id);
            }
            ids
        };
        // The handle-batch job list: the one-shot ops with (c, k) varied
        // across jobs, so a batch exercises several engines and lattice
        // verdicts instead of answering one warm lookup 32 times. (Re-audit
        // workloads are warm-cache by design in BOTH phases — the one-shot
        // loop re-posts the same tables too — so the ratio isolates what
        // the handle path removes: per-job parse + scan + evaluator build.)
        let jobs: Vec<Json> = (0..config.tables)
            .map(|i| {
                let k = 2 + (i % 3) as u64;
                let c = 0.7 + 0.1 * (i % 3) as f64;
                if i % 2 == 0 {
                    Json::object(vec![
                        ("op", "audit".into()),
                        ("k", k.into()),
                        ("c", c.into()),
                    ])
                } else {
                    Json::object(vec![
                        ("op", "search".into()),
                        ("k", k.into()),
                        ("c", c.into()),
                        ("threads", 2u64.into()),
                        ("schedule", "steal".into()),
                    ])
                }
            })
            .collect();
        let handle_body = Json::object(vec![("jobs", Json::Array(jobs))]).to_string();
        let ids = &ids;
        let handle_body = &handle_body;
        let phase = drive(&config, move |worker, request| {
            let id = &ids[(worker + request) % ids.len()];
            (format!("/tables/{id}/batch"), handle_body.clone())
        });
        let handle_jobs = phase.batches * config.tables;
        let jobs_per_sec = handle_jobs as f64 / (phase.wall_ms / 1e3);
        let ratio = if tables_per_sec > 0.0 {
            jobs_per_sec / tables_per_sec
        } else {
            0.0
        };
        handle_failures =
            phase.failures.len() + (phase.batches != config.connections * config.requests) as usize;
        handle_ratio = Some(ratio);
        handle_section = Json::object(vec![
            ("registered", config.tables.into()),
            ("batches", phase.batches.into()),
            ("jobs", handle_jobs.into()),
            ("wall_ms", phase.wall_ms.into()),
            ("jobs_per_sec", jobs_per_sec.into()),
            ("p50", percentile(&phase.samples, 0.50).into()),
            ("p99", percentile(&phase.samples, 0.99).into()),
            ("ratio_vs_oneshot", ratio.into()),
            ("failures", phase.failures.len().into()),
        ]);
        eprintln!(
            "handles: {handle_jobs} jobs in {:.0} ms ({jobs_per_sec:.1} jobs/s; {ratio:.2}x one-shot)",
            phase.wall_ms
        );
    }
    let failures = oneshot.failures;

    // Phase 3 (--conn-scale): the same offered load over few vs many
    // keep-alive connections; on the evented server the p99s should match.
    let mut scale_section = Json::Null;
    let mut scale_failures = 0usize;
    let mut scale_ratio: Option<f64> = None;
    if config.conn_scale > 0 {
        let (section, ratio, phase_failures) = run_conn_scale(&config)?;
        scale_section = section;
        scale_failures = phase_failures;
        scale_ratio = Some(ratio);
    }

    // Server-side counters after the run (best effort): /stats for cache
    // and admission numbers, /metrics for the server's own view of request
    // latency — scraped from the `wcbk_http_request_micros` histogram so
    // the committed report carries both sides of every percentile.
    let mut cache_hits = Json::Null;
    let mut cache_hit_rate = Json::Null;
    let mut rejected = Json::Null;
    let mut server_quantiles: Option<(f64, f64, f64)> = None;
    if let Ok(mut client) = Client::connect(&config.addr, Some(Duration::from_secs(5))) {
        if let Ok(stats) = client.get("/stats").and_then(|r| r.json()) {
            let engine = stats.get("engine_cache");
            cache_hits = engine
                .and_then(|e| e.get("hits"))
                .cloned()
                .unwrap_or(Json::Null);
            cache_hit_rate = engine
                .and_then(|e| e.get("hit_rate"))
                .cloned()
                .unwrap_or(Json::Null);
            rejected = stats
                .get("server")
                .and_then(|s| s.get("rejected_503"))
                .cloned()
                .unwrap_or(Json::Null);
        }
        if let Ok(metrics) = client.get("/metrics") {
            server_quantiles = scrape_server_quantiles(&metrics.body);
        }
    }
    let quantile_json = |pick: fn((f64, f64, f64)) -> f64| {
        server_quantiles.map_or(Json::Null, |qs| pick(qs).into())
    };
    if config.shutdown {
        eprintln!("requesting graceful shutdown…");
        let mut client = Client::connect(&config.addr, Some(Duration::from_secs(10)))?;
        let response = client.post("/shutdown", "{}")?;
        if response.status != 200 {
            return Err(format!("shutdown returned HTTP {}", response.status).into());
        }
    }

    let report = Json::object(vec![
        (
            "workload",
            Json::object(vec![
                ("connections", config.connections.into()),
                ("requests_per_connection", config.requests.into()),
                ("tables_per_batch", config.tables.into()),
                ("rows_base", config.rows.into()),
                // Total rows across the batch's distinct tables (table i
                // holds rows_base + i rows) — scales with --rows so the
                // committed report says how much data the run pushed.
                (
                    "rows_total",
                    (config.tables * config.rows + config.tables * (config.tables - 1) / 2).into(),
                ),
                ("ops", "audit/search alternating".into()),
            ]),
        ),
        (
            "throughput",
            Json::object(vec![
                ("batches", batches.into()),
                ("tables", tables_done.into()),
                ("wall_ms", wall_ms.into()),
                ("tables_per_sec", tables_per_sec.into()),
                ("batches_per_sec", (batches as f64 / (wall_ms / 1e3)).into()),
            ]),
        ),
        (
            "latency_ms",
            Json::object(vec![
                ("p50", percentile(&samples, 0.50).into()),
                ("p90", percentile(&samples, 0.90).into()),
                ("p99", percentile(&samples, 0.99).into()),
                ("max", samples.last().copied().unwrap_or(0.0).into()),
                ("mean", mean.into()),
            ]),
        ),
        ("handles", handle_section),
        ("conn_scale", scale_section),
        (
            "server",
            Json::object(vec![
                ("engine_cache_hits", cache_hits),
                ("engine_cache_hit_rate", cache_hit_rate),
                ("rejected_503", rejected),
                // Server-side request latency (all endpoints, full process
                // lifetime) — bucket-interpolated from /metrics, so
                // coarser than the exact client-side percentiles above
                // but free of client scheduling noise.
                ("latency_ms_p50", quantile_json(|(p50, _, _)| p50)),
                ("latency_ms_p90", quantile_json(|(_, p90, _)| p90)),
                ("latency_ms_p99", quantile_json(|(_, _, p99)| p99)),
            ]),
        ),
        ("failures", failures.len().into()),
    ]);
    if let Some(dir) = std::path::Path::new(&config.out).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&config.out, format!("{report}\n"))?;
    eprintln!(
        "done: {batches} batches, {tables_done} tables in {wall_ms:.0} ms \
         ({tables_per_sec:.1} tables/s; p50 {:.1} ms, p99 {:.1} ms) -> {}",
        percentile(&samples, 0.50),
        percentile(&samples, 0.99),
        config.out
    );

    let expected_batches = config.connections * config.requests;
    if !failures.is_empty() || batches != expected_batches {
        eprintln!(
            "load_gen FAILED: {} failures, {batches}/{expected_batches} batches completed",
            failures.len()
        );
        return Ok(false);
    }
    if tables_per_sec < config.min_throughput {
        eprintln!(
            "load_gen FAILED: {tables_per_sec:.2} tables/s below the {} floor",
            config.min_throughput
        );
        return Ok(false);
    }
    if handle_failures > 0 {
        eprintln!("load_gen FAILED: {handle_failures} handle-phase failures");
        return Ok(false);
    }
    if let Some(ratio) = handle_ratio {
        if ratio < config.min_handle_ratio {
            eprintln!(
                "load_gen FAILED: handle ratio {ratio:.2}x below the {:.2}x floor",
                config.min_handle_ratio
            );
            return Ok(false);
        }
    }
    if scale_failures > 0 {
        eprintln!("load_gen FAILED: {scale_failures} conn-scale failures");
        return Ok(false);
    }
    if let Some(ratio) = scale_ratio {
        if config.max_p99_ratio > 0.0 && ratio > config.max_p99_ratio {
            eprintln!(
                "load_gen FAILED: conn-scale p99 ratio {ratio:.2}x above the {:.2}x ceiling",
                config.max_p99_ratio
            );
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_defaults() {
        let c = parse_args(&[]).unwrap();
        assert_eq!(c.connections, 8);
        assert_eq!(c.tables, 32);
        assert!(!c.shutdown);
        assert!(!c.handles);
        assert_eq!(c.min_handle_ratio, 0.0);
        assert_eq!(c.conn_scale, 0);
        assert_eq!(c.slowloris, 0);
        assert_eq!(c.max_p99_ratio, 0.0);
        let c = parse_args(&[
            "--handles".into(),
            "--min-handle-ratio".into(),
            "2.5".into(),
            "--conn-scale".into(),
            "128".into(),
            "--slowloris".into(),
            "16".into(),
            "--max-p99-ratio".into(),
            "8.0".into(),
        ])
        .unwrap();
        assert!(c.handles);
        assert!((c.min_handle_ratio - 2.5).abs() < 1e-12);
        assert_eq!(c.conn_scale, 128);
        assert_eq!(c.slowloris, 16);
        assert!((c.max_p99_ratio - 8.0).abs() < 1e-12);
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:9",
            "--connections",
            "2",
            "--requests",
            "3",
            "--tables",
            "4",
            "--rows",
            "50",
            "--out",
            "/tmp/x.json",
            "--min-throughput",
            "1.5",
            "--shutdown",
            "--wait-ms",
            "100",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let c = parse_args(&args).unwrap();
        assert_eq!(c.addr, "127.0.0.1:9");
        assert_eq!(c.connections, 2);
        assert_eq!(c.requests, 3);
        assert_eq!(c.tables, 4);
        assert_eq!(c.rows, 50);
        assert!(c.shutdown);
        assert!((c.min_throughput - 1.5).abs() < 1e-12);
        assert!(parse_args(&["--connections".into(), "0".into()]).is_err());
        assert!(parse_args(&["--frobnicate".into()]).is_err());
        assert!(parse_args(&["--rows".into()]).is_err());
    }

    #[test]
    fn jobs_alternate_ops_over_distinct_tables() {
        let a = build_job(0, 40).unwrap();
        let b = build_job(1, 40).unwrap();
        assert_eq!(a.get("op").and_then(Json::as_str), Some("audit"));
        assert_eq!(b.get("op").and_then(Json::as_str), Some("search"));
        assert_ne!(
            a.get("csv").and_then(Json::as_str),
            b.get("csv").and_then(Json::as_str)
        );
        assert!(b.get("hierarchy").is_some());
    }

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// End-to-end: boot a real server in-process, run the closed loop
    /// against it, and check the report it writes.
    #[test]
    fn drives_a_live_server_end_to_end() {
        let server = wcbk_serve::Server::bind(&wcbk_serve::ServerConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let join = std::thread::spawn(move || server.run());

        let out = std::env::temp_dir().join("wcbk_load_gen_test.json");
        let args: Vec<String> = [
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "2",
            "--tables",
            "3",
            "--rows",
            "40",
            "--out",
            out.to_str().unwrap(),
            "--min-throughput",
            "0.0001",
            "--handles",
            "--min-handle-ratio",
            "0.0001",
            "--conn-scale",
            "16",
            "--max-p99-ratio",
            "10000",
            "--shutdown",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        assert!(run(&args).unwrap(), "load_gen reported failure");
        join.join().unwrap().unwrap();

        let report = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            report
                .get("throughput")
                .and_then(|t| t.get("batches"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            report
                .get("throughput")
                .and_then(|t| t.get("tables"))
                .and_then(Json::as_u64),
            Some(12)
        );
        assert_eq!(report.get("failures").and_then(Json::as_u64), Some(0));
        // rows_total scales with --rows: 3 tables of 40, 41, 42 rows.
        assert_eq!(
            report
                .get("workload")
                .and_then(|w| w.get("rows_total"))
                .and_then(Json::as_u64),
            Some(123)
        );
        assert!(
            report
                .get("latency_ms")
                .and_then(|l| l.get("p50"))
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        // The handle phase ran: 3 handles registered, 4 batches × 3 jobs,
        // a positive throughput ratio, zero failures.
        let handles = report.get("handles").unwrap();
        assert_eq!(handles.get("registered").and_then(Json::as_u64), Some(3));
        assert_eq!(handles.get("jobs").and_then(Json::as_u64), Some(12));
        assert!(
            handles
                .get("ratio_vs_oneshot")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(handles.get("failures").and_then(Json::as_u64), Some(0));
        // The conn-scale phase ran: both runs completed at the offered
        // rate with a finite p99 ratio and no failures.
        let scale = report.get("conn_scale").unwrap();
        assert_eq!(
            scale.get("scaled_connections").and_then(Json::as_u64),
            Some(16)
        );
        assert_eq!(scale.get("failures").and_then(Json::as_u64), Some(0));
        assert!(scale.get("p99_ratio").and_then(Json::as_f64).unwrap() > 0.0);
        // The server-side percentiles were scraped from /metrics and sit
        // next to the client-side numbers.
        let server = report.get("server").unwrap();
        for key in ["latency_ms_p50", "latency_ms_p90", "latency_ms_p99"] {
            assert!(
                server.get(key).and_then(Json::as_f64).unwrap() > 0.0,
                "{key} in {server}"
            );
        }
        assert!(
            server.get("latency_ms_p50").and_then(Json::as_f64)
                <= server.get("latency_ms_p99").and_then(Json::as_f64)
        );
    }

    #[test]
    fn server_quantiles_interpolate_and_merge_labels() {
        // Two endpoint labels over bounds 100/1000/+Inf µs; merged counts
        // are 8 ≤ 100µs, 2 in (100, 1000]. p50 falls inside the first
        // bucket, p99 inside the second.
        let exposition = "\
# TYPE wcbk_http_request_micros histogram
wcbk_http_request_micros_bucket{endpoint=\"/audit\",le=\"100\"} 5
wcbk_http_request_micros_bucket{endpoint=\"/audit\",le=\"1000\"} 6
wcbk_http_request_micros_bucket{endpoint=\"/audit\",le=\"+Inf\"} 6
wcbk_http_request_micros_bucket{endpoint=\"/search\",le=\"100\"} 3
wcbk_http_request_micros_bucket{endpoint=\"/search\",le=\"1000\"} 4
wcbk_http_request_micros_bucket{endpoint=\"/search\",le=\"+Inf\"} 4
wcbk_http_request_micros_sum{endpoint=\"/audit\"} 900
wcbk_http_request_micros_count{endpoint=\"/audit\"} 6
";
        let (p50, p90, p99) = scrape_server_quantiles(exposition).unwrap();
        assert!((p50 - 0.0625).abs() < 1e-9, "p50 {p50}");
        assert!((p90 - 0.55).abs() < 1e-9, "p90 {p90}");
        assert!(p99 > p90 && p99 <= 1.0, "p99 {p99}");
        // No histogram lines → no estimate; zero traffic → no estimate.
        assert!(scrape_server_quantiles("# nothing here\n").is_none());
        assert!(scrape_server_quantiles(
            "wcbk_http_request_micros_bucket{endpoint=\"/audit\",le=\"+Inf\"} 0\n"
        )
        .is_none());
    }
}
