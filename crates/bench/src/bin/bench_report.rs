//! `bench_report` — machine-readable perf trajectory for the lattice search.
//!
//! Runs the lattice-search benchmark on a datagen Adult-style workload,
//! comparing the legacy per-node `bucketize` path against the one-scan
//! roll-up pipeline **and** the level-synchronous parallel schedule against
//! the work-stealing one (both at 4 threads), verifies that every variant
//! agrees node-for-node, and writes JSON to `results/BENCH_search.json`
//! (nodes evaluated, wall time, ns/node, cache hit rate, speedups) so
//! successive PRs can track the trend and CI's `bench-gate` job can fail on
//! regressions (see the `bench_gate` bin).
//!
//! Run: `cargo run --release -p wcbk-bench --bin bench_report \
//!       [n_rows] [c] [k] [--out FILE]`
//!
//! A second mode, `--scale [n_rows]` (default 1 000 000), benchmarks the
//! **bottom scan itself** at scale: the row-at-a-time reference scan vs the
//! chunked columnar kernel at 1 thread vs `--scan-threads` (default 4)
//! threads, asserts all three agree node-for-node across the whole lattice,
//! and writes rows/s plus in-run speedups to `results/BENCH_scale.json`
//! (gated by `bench_gate --scale` in CI).

use std::sync::Arc;
use std::time::{Duration, Instant};

use wcbk_anonymize::search::{
    find_minimal_safe, find_minimal_safe_rescan, find_minimal_safe_with, sweep_all,
    sweep_all_rescan, Schedule, SearchConfig,
};
use wcbk_anonymize::CkSafetyCriterion;
use wcbk_bench::{small_adult, HarnessError};
use wcbk_hierarchy::adult::adult_lattice;
use wcbk_hierarchy::{NodeEvaluator, ScanOptions};

/// Medians over a few repetitions to keep single-run noise out of the
/// committed trajectory.
const REPS: usize = 5;

fn median_time<T>(mut run: impl FnMut() -> T) -> (Duration, T) {
    let mut samples: Vec<Duration> = Vec::with_capacity(REPS);
    let mut last = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let out = run();
        samples.push(start.elapsed());
        last = Some(out);
    }
    samples.sort();
    (samples[REPS / 2], last.expect("REPS > 0"))
}

fn ns_per_node(elapsed: Duration, nodes: usize) -> f64 {
    elapsed.as_nanos() as f64 / nodes.max(1) as f64
}

/// `--scale` mode: the million-row bottom-scan benchmark. Times the
/// construction scan of the shared evaluator three ways — the pre-kernel
/// row-at-a-time reference, the chunked columnar kernel on one thread, and
/// the kernel across `threads` workers — asserts all three produce
/// node-for-node identical histograms across the whole lattice, and writes
/// `results/BENCH_scale.json` with rows/s plus the two in-run speedups the
/// CI `scale-gate` job checks.
fn run_scale(n_rows: usize, threads: usize, out_path: &str) -> Result<(), HarnessError> {
    eprintln!("generating synthetic Adult ({n_rows} rows)…");
    let table = small_adult(n_rows);
    let lattice = Arc::new(adult_lattice(&table)?);
    let n_nodes = lattice.n_nodes();

    let build = |scan: ScanOptions| {
        NodeEvaluator::shared_with_scan(&table, Arc::clone(&lattice), None, scan).unwrap()
    };
    eprintln!("bottom scan, row-at-a-time reference…");
    let (reference_time, reference_eval) = median_time(|| {
        build(ScanOptions {
            reference: true,
            ..ScanOptions::default()
        })
    });
    eprintln!("bottom scan, chunked kernel, 1 thread…");
    let (kernel_time, kernel_eval) = median_time(|| {
        build(ScanOptions {
            threads: 1,
            ..ScanOptions::default()
        })
    });
    eprintln!("bottom scan, chunked kernel, {threads} threads…");
    let (parallel_time, parallel_eval) = median_time(|| {
        build(ScanOptions {
            threads,
            ..ScanOptions::default()
        })
    });

    // Equivalence gate: every lattice node's histograms identical across
    // all three scans (first-occurrence group order and all).
    eprintln!("verifying node-for-node equivalence across {n_nodes} nodes…");
    for node in lattice.nodes() {
        let want = reference_eval.histograms(&node)?;
        for (eval, label) in [(&kernel_eval, "kernel"), (&parallel_eval, "parallel")] {
            let got = eval.histograms(&node)?;
            assert_eq!(
                got.n_buckets(),
                want.n_buckets(),
                "{label} scan diverged from reference at node {node}"
            );
            assert_eq!(
                got.histograms(),
                want.histograms(),
                "{label} scan diverged from reference at node {node}"
            );
        }
    }
    let bottom_groups = reference_eval.stats().bottom_groups;

    let rows_per_s = |t: Duration| n_rows as f64 / t.as_secs_f64();
    let kernel_speedup = rows_per_s(kernel_time) / rows_per_s(reference_time);
    let parallel_speedup = rows_per_s(parallel_time) / rows_per_s(reference_time);

    let json = format!(
        "{{\n  \"workload\": {{ \"rows\": {n_rows}, \"lattice_nodes\": {n_nodes}, \"bottom_groups\": {bottom_groups}, \"scan_threads\": {threads} }},\n  \
           \"bottom_scan\": {{ \"reference_ms\": {:.3}, \"kernel_ms\": {:.3}, \"parallel_ms\": {:.3}, \
\"reference_rows_per_s\": {:.0}, \"kernel_rows_per_s\": {:.0}, \"parallel_rows_per_s\": {:.0}, \
\"kernel_speedup\": {:.2}, \"parallel_speedup\": {:.2} }}\n}}\n",
        reference_time.as_secs_f64() * 1e3,
        kernel_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3,
        rows_per_s(reference_time),
        rows_per_s(kernel_time),
        rows_per_s(parallel_time),
        kernel_speedup,
        parallel_speedup,
    );
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(out_path, &json)?;
    println!("{json}");
    eprintln!(
        "kernel speedup {kernel_speedup:.2}x, parallel speedup {parallel_speedup:.2}x — wrote {out_path}"
    );
    Ok(())
}

fn main() -> Result<(), HarnessError> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let scale = match raw.iter().position(|a| a == "--scale") {
        Some(pos) => {
            raw.remove(pos);
            true
        }
        None => false,
    };
    let scan_threads: usize = match raw.iter().position(|a| a == "--scan-threads") {
        Some(pos) => {
            let value = raw
                .get(pos + 1)
                .ok_or("--scan-threads needs a value")?
                .clone();
            raw.drain(pos..=pos + 1);
            value.parse()?
        }
        None => 4,
    };
    let out_path = match raw.iter().position(|a| a == "--out") {
        Some(pos) => {
            let value = raw.get(pos + 1).ok_or("--out needs a value")?.clone();
            raw.drain(pos..=pos + 1);
            value
        }
        None if scale => "results/BENCH_scale.json".to_owned(),
        None => "results/BENCH_search.json".to_owned(),
    };
    if scale {
        let n_rows: usize = raw
            .first()
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(1_000_000);
        return run_scale(n_rows, scan_threads.max(1), &out_path);
    }
    let mut args = raw.into_iter();
    let n_rows: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(5_000);
    let c: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.8);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);

    eprintln!("generating synthetic Adult ({n_rows} rows)…");
    let table = small_adult(n_rows);
    let lattice = adult_lattice(&table)?;
    let n_nodes = lattice.n_nodes();

    // Exhaustive sweep: every node evaluated on both pipelines, so ns/node is
    // directly comparable (the pruned search's node set depends on verdicts).
    eprintln!("sweeping {n_nodes} nodes via legacy per-node bucketize…");
    let (legacy_sweep, legacy_verdicts) = median_time(|| {
        sweep_all_rescan(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap()
    });
    eprintln!("sweeping {n_nodes} nodes via one-scan roll-up…");
    let (rollup_sweep, rollup_verdicts) = median_time(|| {
        sweep_all(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap()
    });
    assert_eq!(
        legacy_verdicts, rollup_verdicts,
        "roll-up sweep diverged from the legacy sweep"
    );

    // The pruned search, both pipelines, same equivalence gate.
    eprintln!("pruned search via legacy path…");
    let (legacy_search, legacy_outcome) = median_time(|| {
        find_minimal_safe_rescan(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap()
    });
    eprintln!("pruned search via roll-up path…");
    let criterion = CkSafetyCriterion::new(c, k).unwrap();
    let (rollup_search, rollup_outcome) =
        median_time(|| find_minimal_safe(&table, &lattice, &criterion).unwrap());
    assert_eq!(
        legacy_outcome, rollup_outcome,
        "roll-up search diverged from the legacy search"
    );
    let cache = criterion.engine_stats();

    // Level-synchronous vs work-stealing parallel schedules at a fixed
    // thread count, both pinned to the sequential outcome.
    let par_threads = 4usize;
    eprintln!("pruned search, level-synchronous schedule ({par_threads} threads)…");
    let level_criterion = CkSafetyCriterion::new(c, k).unwrap();
    let level_cfg = SearchConfig {
        threads: par_threads,
        schedule: Schedule::LevelSync,
        ..Default::default()
    };
    let (level_search, level_outcome) = median_time(|| {
        find_minimal_safe_with(&table, &lattice, &level_criterion, &level_cfg).unwrap()
    });
    assert_eq!(
        rollup_outcome, level_outcome,
        "level-synchronous search diverged from the sequential search"
    );
    eprintln!("pruned search, work-stealing schedule ({par_threads} threads)…");
    let steal_criterion = CkSafetyCriterion::new(c, k).unwrap();
    let steal_cfg = SearchConfig {
        threads: par_threads,
        schedule: Schedule::WorkStealing,
        ..Default::default()
    };
    let (steal_search, steal_outcome) = median_time(|| {
        find_minimal_safe_with(&table, &lattice, &steal_criterion, &steal_cfg).unwrap()
    });
    assert_eq!(
        rollup_outcome, steal_outcome,
        "work-stealing search diverged from the sequential search"
    );

    // Roll-up internals for the record: scans and derivations.
    let eval = NodeEvaluator::new(&table, &lattice)?;
    for node in lattice.nodes() {
        eval.histograms(&node)?;
    }
    let rollup_stats = eval.stats();

    let sweep_speedup = ns_per_node(legacy_sweep, n_nodes) / ns_per_node(rollup_sweep, n_nodes);
    let search_speedup = ns_per_node(legacy_search, legacy_outcome.evaluated)
        / ns_per_node(rollup_search, rollup_outcome.evaluated);
    let steal_speedup_vs_level = ns_per_node(level_search, level_outcome.evaluated)
        / ns_per_node(steal_search, steal_outcome.evaluated);

    let json = format!(
        "{{\n  \"workload\": {{ \"rows\": {n_rows}, \"lattice_nodes\": {n_nodes}, \"c\": {c}, \"k\": {k} }},\n  \
           \"sweep\": {{ \"nodes_evaluated\": {n_nodes}, \"legacy_ns_per_node\": {:.0}, \"rollup_ns_per_node\": {:.0}, \"speedup\": {:.2} }},\n  \
           \"search\": {{ \"nodes_evaluated\": {}, \"minimal_nodes\": {}, \"legacy_ms\": {:.3}, \"rollup_ms\": {:.3}, \"legacy_ns_per_node\": {:.0}, \"rollup_ns_per_node\": {:.0}, \"speedup\": {:.2} }},\n  \
           \"parallel\": {{ \"threads\": {par_threads}, \"level_ms\": {:.3}, \"steal_ms\": {:.3}, \"level_ns_per_node\": {:.0}, \"steal_ns_per_node\": {:.0}, \"steal_speedup_vs_level\": {:.2} }},\n  \
           \"rollup\": {{ \"table_scans\": {}, \"derived_nodes\": {}, \"bottom_groups\": {} }},\n  \
           \"engine_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }}\n}}\n",
        ns_per_node(legacy_sweep, n_nodes),
        ns_per_node(rollup_sweep, n_nodes),
        sweep_speedup,
        rollup_outcome.evaluated,
        rollup_outcome.minimal_nodes.len(),
        legacy_search.as_secs_f64() * 1e3,
        rollup_search.as_secs_f64() * 1e3,
        ns_per_node(legacy_search, legacy_outcome.evaluated),
        ns_per_node(rollup_search, rollup_outcome.evaluated),
        search_speedup,
        level_search.as_secs_f64() * 1e3,
        steal_search.as_secs_f64() * 1e3,
        ns_per_node(level_search, level_outcome.evaluated),
        ns_per_node(steal_search, steal_outcome.evaluated),
        steal_speedup_vs_level,
        rollup_stats.table_scans,
        rollup_stats.derived,
        rollup_stats.bottom_groups,
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate(),
    );

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out_path, &json)?;
    println!("{json}");
    eprintln!(
        "sweep speedup {:.2}x, search speedup {:.2}x, steal vs level {:.2}x — wrote {out_path}",
        sweep_speedup, search_speedup, steal_speedup_vs_level
    );
    Ok(())
}
