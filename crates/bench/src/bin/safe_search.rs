//! E6 — Section 3.4 demonstration: find all ⪯-minimal (c,k)-safe
//! generalizations of the Adult lattice, compare against the k-anonymity and
//! ℓ-diversity baselines, and report utility of the chosen nodes.
//!
//! Run: `cargo run --release -p wcbk-bench --bin safe_search [n_rows] [c] [k]`

use wcbk_anonymize::search::{find_minimal_safe, find_minimal_safe_parallel};
use wcbk_anonymize::utility::{average_class_size, discernibility};
use wcbk_anonymize::{
    CkSafetyCriterion, EntropyLDiversity, KAnonymity, PrivacyCriterion, UtilityMetric,
};
use wcbk_bench::{print_aligned, write_csv, HarnessError};
use wcbk_datagen::adult::{synthetic_adult, AdultConfig};
use wcbk_hierarchy::adult::adult_lattice;

fn main() -> Result<(), HarnessError> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` (0 = all cores) selects the parallel search path.
    let threads: usize = match raw.iter().position(|a| a == "--threads") {
        Some(pos) => {
            let value = raw.get(pos + 1).ok_or("--threads needs a value")?.parse()?;
            raw.drain(pos..=pos + 1);
            value
        }
        None => 1,
    };
    let mut args = raw.into_iter();
    let n_rows: usize = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);
    let c: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.75);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);

    eprintln!("generating synthetic Adult ({n_rows} rows)…");
    let table = synthetic_adult(AdultConfig {
        n_rows,
        ..Default::default()
    });
    let lattice = adult_lattice(&table)?;

    println!("== minimal safe generalizations on the 72-node Adult lattice ==\n");
    let header = ["criterion", "minimal nodes", "evaluated", "satisfied"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    let report = |name: String,
                  outcome: wcbk_anonymize::SearchOutcome,
                  rows: &mut Vec<Vec<String>>,
                  csv_rows: &mut Vec<Vec<String>>| {
        let nodes = outcome
            .minimal_nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            name.clone(),
            if nodes.is_empty() {
                "(none)".into()
            } else {
                nodes.clone()
            },
            outcome.evaluated.to_string(),
            outcome.satisfied.to_string(),
        ]);
        csv_rows.push(vec![
            name,
            nodes,
            outcome.evaluated.to_string(),
            outcome.satisfied.to_string(),
        ]);
    };

    let ck = CkSafetyCriterion::new(c, k)?;
    if threads != 1 {
        eprintln!("parallel search with {threads} threads (0 = all cores)…");
    }
    // Resolves 0 → all cores and degenerates to sequential at 1 thread.
    let outcome = find_minimal_safe_parallel(&table, &lattice, &ck, threads)?;
    let stats = ck.engine_stats();
    report(ck.name(), outcome, &mut rows, &mut csv_rows);
    eprintln!(
        "(c,k)-safety engine cache: {} hits / {} misses / {} entries ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.entries,
        100.0 * stats.hit_rate()
    );

    // The same criterion through real Incognito (apriori subset join):
    // identical minimal nodes, different evaluation budget.
    let ck_inc = CkSafetyCriterion::new(c, k)?;
    let inc = wcbk_anonymize::incognito_parallel(&table, &lattice, &ck_inc, threads)?;
    report(
        format!("{} [incognito]", ck_inc.name()),
        wcbk_anonymize::SearchOutcome {
            minimal_nodes: inc.minimal_nodes.clone(),
            evaluated: inc.evaluated,
            satisfied: 0,
        },
        &mut rows,
        &mut csv_rows,
    );
    eprintln!(
        "incognito per-size (size, candidates, evaluated): {:?}",
        inc.per_size
    );

    let ka = KAnonymity::new(50);
    let outcome = find_minimal_safe(&table, &lattice, &ka)?;
    report(ka.name(), outcome, &mut rows, &mut csv_rows);

    let el = EntropyLDiversity::new(4.0)?;
    let outcome = find_minimal_safe(&table, &lattice, &el)?;
    report(el.name(), outcome, &mut rows, &mut csv_rows);

    print_aligned(&mut std::io::stdout(), &header, &rows)?;
    let path = write_csv("results/safe_search.csv", &header, &csv_rows)?;
    eprintln!("\nwrote {}", path.display());

    println!("\n== utility-ranked (c,k)-safe publication ==");
    let ck = CkSafetyCriterion::new(c, k)?;
    match wcbk_anonymize::anonymize_parallel(
        &table,
        &lattice,
        &ck,
        UtilityMetric::Discernibility,
        threads,
    ) {
        Ok(outcome) => {
            let audit = outcome.audit(k)?;
            println!("chosen node:      {}", outcome.node);
            println!("buckets:          {}", outcome.bucketization.n_buckets());
            println!(
                "discernibility:   {}",
                discernibility(&outcome.bucketization)
            );
            println!(
                "avg class size:   {:.2}",
                average_class_size(&outcome.bucketization)
            );
            println!("max disclosure:   {:.6} (< c = {c})", audit.value);
        }
        Err(e) => println!("no safe node: {e}"),
    }
    Ok(())
}
