//! E2 — regenerates **Figure 5**: maximum disclosure vs. number of pieces of
//! background knowledge (k = 0..12) for basic implications (solid line in
//! the paper) and negated atoms (dotted line), on the Adult anonymization
//! with Age in 20-year intervals and all other quasi-identifiers suppressed.
//!
//! Run: `cargo run --release -p wcbk-bench --bin fig5 [n_rows] [seed]`
//! or, with the genuine UCI file:
//! `cargo run --release -p wcbk-bench --bin fig5 --adult-csv path/to/adult.data`
//! Output: table on stdout + `results/fig5.csv`.

use wcbk_bench::{figure5, load_table_arg, print_aligned, write_csv, HarnessError};

fn main() -> Result<(), HarnessError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let table = load_table_arg(&args)?;
    eprintln!(
        "table ready: {} rows, {} occupations",
        table.n_rows(),
        table.sensitive_cardinality()
    );

    let rows = figure5(&table, 12)?;
    println!("Figure 5: disclosure vs # pieces of background knowledge");
    println!("(anonymization: Age -> 20-year intervals, Marital/Race/Gender suppressed)\n");
    let header = ["k", "implication", "negation"];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                format!("{:.6}", r.implication),
                format!("{:.6}", r.negation),
            ]
        })
        .collect();
    print_aligned(&mut std::io::stdout(), &header, &cells)?;

    let path = write_csv("results/fig5.csv", &header, &cells)?;
    eprintln!("\nwrote {}", path.display());

    // Shape checks mirroring the paper's reading of the figure.
    let monotone = rows.windows(2).all(|w| {
        w[1].implication >= w[0].implication - 1e-12 && w[1].negation >= w[0].negation - 1e-12
    });
    let dominated = rows.iter().all(|r| r.implication >= r.negation - 1e-12);
    println!("\nshape: monotone in k: {monotone}; implication >= negation: {dominated}");
    Ok(())
}
