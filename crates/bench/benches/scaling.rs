//! E4 — complexity validation: the paper claims the maximum-disclosure
//! algorithm runs in `O(|B|·k³)` time. Two sweeps check the shape: time vs.
//! `k` at fixed `|B|` (cubic-ish) and time vs. `|B|` at fixed `k` (linear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wcbk_core::max_disclosure;
use wcbk_datagen::workload::{random_bucketization, WorkloadConfig};

fn bench_k_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_k");
    let bucketization = random_bucketization(WorkloadConfig {
        n_buckets: 64,
        bucket_size: (32, 64),
        n_values: 64,
        skew: 1.0,
        seed: 99,
    });
    for k in [2usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("B64", k), &k, |b, &k| {
            b.iter(|| black_box(max_disclosure(black_box(&bucketization), k).unwrap().value))
        });
    }
    group.finish();
}

fn bench_bucket_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_buckets");
    for n_buckets in [16usize, 64, 256, 1024, 4096] {
        let bucketization = random_bucketization(WorkloadConfig {
            n_buckets,
            bucket_size: (8, 32),
            n_values: 14,
            skew: 1.0,
            seed: 7 + n_buckets as u64,
        });
        group.throughput(Throughput::Elements(n_buckets as u64));
        group.bench_with_input(
            BenchmarkId::new("k8", n_buckets),
            &bucketization,
            |b, bk| b.iter(|| black_box(max_disclosure(black_box(bk), 8).unwrap().value)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_k_scaling, bench_bucket_scaling);
criterion_main!(benches);
