//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * MINIMIZE1: the `O(k³)` reformulated table vs. the paper's Algorithm 1
//!   as written (exponential recursion without memoization) — quantifies
//!   why the DP formulation matters;
//! * histogram-keyed caching in the engine vs. cold computation — the
//!   memo-reuse claim of §3.3.3;
//! * witness reconstruction on/off — the cost of producing the worst-case
//!   attacker rather than just the disclosure value;
//! * Incognito's subset join vs. plain monotone BFS over the full lattice —
//!   criterion evaluations traded for join bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_anonymize::incognito::incognito;
use wcbk_anonymize::search::find_minimal_safe;
use wcbk_anonymize::KAnonymity;
use wcbk_bench::small_adult;
use wcbk_core::minimize1::{paper_recursion, Minimize1Table};
use wcbk_core::{max_disclosure, DisclosureEngine, SensitiveHistogram};
use wcbk_datagen::workload::{random_bucketization, WorkloadConfig};
use wcbk_hierarchy::adult::adult_lattice;
use wcbk_table::SValue;

fn skewed_histogram(n: u64, d: u32) -> SensitiveHistogram {
    // Zipf-ish counts over d values summing to ~n.
    let mut counts = Vec::new();
    let mut left = n;
    for v in 0..d {
        let c = (n / (v as u64 + 2)).max(1).min(left);
        counts.push((SValue(v), c));
        left = left.saturating_sub(c);
        if left == 0 {
            break;
        }
    }
    if left > 0 {
        counts[0].1 += left;
    }
    SensitiveHistogram::from_counts(counts)
}

fn bench_minimize1_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_minimize1");
    let hist = skewed_histogram(10_000, 20);
    for k in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("dp_table", k), &k, |b, &k| {
            b.iter(|| black_box(Minimize1Table::build(&hist, k).m1(k)))
        });
        // The unmemoized paper recursion blows up combinatorially; keep k
        // small enough to terminate in bench time.
        if k <= 12 {
            group.bench_with_input(BenchmarkId::new("paper_recursion", k), &k, |b, &k| {
                b.iter(|| black_box(paper_recursion(&hist, 0, k, k)))
            });
        }
    }
    group.finish();
}

fn bench_engine_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engine_cache");
    let bucketization = random_bucketization(WorkloadConfig {
        n_buckets: 512,
        bucket_size: (8, 32),
        n_values: 14,
        skew: 1.0,
        seed: 5150,
    });
    let k = 8;
    group.bench_function("cold_no_cache", |b| {
        b.iter(|| black_box(max_disclosure(&bucketization, k).unwrap().value))
    });
    group.bench_function("warm_histogram_cache", |b| {
        let engine = DisclosureEngine::new(k);
        engine.max_disclosure_value(&bucketization).unwrap();
        b.iter(|| black_box(engine.max_disclosure_value(&bucketization).unwrap()))
    });
    group.bench_function("value_only_vs_witness", |b| {
        let engine = DisclosureEngine::new(k);
        b.iter(|| black_box(engine.max_disclosure(&bucketization).unwrap().value))
    });
    group.finish();
}

fn bench_incognito_vs_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incognito");
    group.sample_size(10);
    let table = small_adult(5_000);
    let lattice = adult_lattice(&table).expect("adult lattice");
    group.bench_function("incognito_subset_join", |b| {
        b.iter(|| black_box(incognito(&table, &lattice, &KAnonymity::new(50)).unwrap()))
    });
    group.bench_function("plain_monotone_bfs", |b| {
        b.iter(|| black_box(find_minimal_safe(&table, &lattice, &KAnonymity::new(50)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_minimize1_variants,
    bench_engine_cache,
    bench_incognito_vs_bfs
);
criterion_main!(benches);
