//! E6 — Section 3.4 lattice search: finding all minimal (c,k)-safe
//! generalizations with monotone pruning versus the exhaustive sweep, and
//! (c,k)-safety versus the cheaper baselines it replaces in Incognito.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_anonymize::search::{
    find_minimal_safe, find_minimal_safe_parallel, find_minimal_safe_with, sweep_all, Schedule,
    SearchConfig,
};
use wcbk_anonymize::{CkSafetyCriterion, EntropyLDiversity, KAnonymity};
use wcbk_bench::small_adult;
use wcbk_hierarchy::adult::adult_lattice;

fn bench_lattice_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_search");
    group.sample_size(10);
    let table = small_adult(5_000);
    let lattice = adult_lattice(&table).expect("adult lattice");

    group.bench_function("ck_safety_pruned", |b| {
        b.iter(|| {
            let criterion = CkSafetyCriterion::new(0.8, 3).unwrap();
            black_box(find_minimal_safe(&table, &lattice, &criterion).unwrap())
        })
    });

    group.bench_function("ck_safety_sweep_all", |b| {
        b.iter(|| {
            let criterion = CkSafetyCriterion::new(0.8, 3).unwrap();
            black_box(sweep_all(&table, &lattice, &criterion).unwrap())
        })
    });

    group.bench_function("k_anonymity_pruned", |b| {
        b.iter(|| {
            let criterion = KAnonymity::new(50);
            black_box(find_minimal_safe(&table, &lattice, &criterion).unwrap())
        })
    });

    group.bench_function("entropy_ldiv_pruned", |b| {
        b.iter(|| {
            let criterion = EntropyLDiversity::new(4.0).unwrap();
            black_box(find_minimal_safe(&table, &lattice, &criterion).unwrap())
        })
    });

    for k in [1usize, 5, 9] {
        group.bench_with_input(BenchmarkId::new("ck_safety_power", k), &k, |b, &k| {
            b.iter(|| {
                let criterion = CkSafetyCriterion::new(0.8, k).unwrap();
                black_box(find_minimal_safe(&table, &lattice, &criterion).unwrap())
            })
        });
    }

    // The parallel search (work-stealing default schedule) against the
    // sequential baseline, sharing one engine cache across worker threads.
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ck_safety_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let criterion = CkSafetyCriterion::new(0.8, 3).unwrap();
                    black_box(
                        find_minimal_safe_parallel(&table, &lattice, &criterion, threads).unwrap(),
                    )
                })
            },
        );
    }

    // Level-synchronous vs work-stealing, head to head per thread count.
    for threads in [2usize, 4, 8] {
        for (name, schedule) in [
            ("ck_safety_level_sync", Schedule::LevelSync),
            ("ck_safety_steal", Schedule::WorkStealing),
        ] {
            let config = SearchConfig {
                threads,
                schedule,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(name, threads), &config, |b, config| {
                b.iter(|| {
                    let criterion = CkSafetyCriterion::new(0.8, 3).unwrap();
                    black_box(find_minimal_safe_with(&table, &lattice, &criterion, config).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lattice_search);
criterion_main!(benches);
