//! E5 — the Theorem 8 hardness gap: exact inference over worlds
//! (#P-complete in general) blows up exponentially with instance size while
//! the worst-case DP (which sidesteps per-formula inference entirely) stays
//! polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_core::max_disclosure;
use wcbk_datagen::workload::{random_bucketization, WorkloadConfig};
use wcbk_logic::{Atom, SimpleImplication};
use wcbk_table::{SValue, TupleId};
use wcbk_worlds::consistency::count_satisfying_worlds;
use wcbk_worlds::{BucketSpec, WorldSpace};

fn space_of(b: &wcbk_core::Bucketization) -> WorldSpace {
    WorldSpace::new(
        b.to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .expect("valid space")
}

/// Cross-bucket implication chain touching every bucket — the worst case for
/// backtracking inference.
fn chain_implications(b: &wcbk_core::Bucketization) -> Vec<SimpleImplication> {
    let mut imps = Vec::new();
    for i in 0..b.n_buckets() - 1 {
        let p = b.bucket(i).members()[0];
        let q = b.bucket(i + 1).members()[0];
        let vp = b.bucket(i).histogram().value_at(0).unwrap();
        let vq = b.bucket(i + 1).histogram().value_at(0).unwrap();
        imps.push(SimpleImplication::new(Atom::new(p, vp), Atom::new(q, vq)));
    }
    // A few same-bucket constraints to harden propagation.
    for i in 0..b.n_buckets() {
        let members = b.bucket(i).members();
        if members.len() >= 2 {
            let h = b.bucket(i).histogram();
            let last = h.value_at(h.distinct() - 1).unwrap_or(SValue(0));
            imps.push(SimpleImplication::new(
                Atom::new(members[1], last),
                Atom::new(members[0], h.value_at(0).unwrap()),
            ));
        }
    }
    imps
}

fn bench_exact_vs_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_dp");
    group.sample_size(10);
    for n_buckets in [2usize, 3, 4, 5] {
        let b = random_bucketization(WorkloadConfig {
            n_buckets,
            bucket_size: (6, 6),
            n_values: 4,
            skew: 0.8,
            seed: 31 + n_buckets as u64,
        });
        let space = space_of(&b);
        let imps = chain_implications(&b);
        let tid = TupleId(0);
        let target = Atom::new(tid, b.bucket(0).histogram().value_at(0).unwrap());
        let mut with_target = imps.clone();
        with_target.push(SimpleImplication::new(target, target));

        group.bench_with_input(
            BenchmarkId::new("exact_model_count", n_buckets),
            &imps,
            |bench, imps| bench.iter(|| black_box(count_satisfying_worlds(&space, imps).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("dp_max_disclosure_k4", n_buckets),
            &b,
            |bench, b| bench.iter(|| black_box(max_disclosure(b, 4).unwrap().value)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_dp);
criterion_main!(benches);
