//! E3 — Figure 6 regeneration benchmark: sweeping all 72 nodes of the Adult
//! generalization lattice, computing per-node min-entropy and maximum
//! disclosure for k ∈ {1,3,5,7,9,11}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_bench::{figure6, profile_adult_lattice, small_adult};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let ks = [1usize, 3, 5, 7, 9, 11];
    for n_rows in [2_000usize, 10_000] {
        let table = small_adult(n_rows);
        group.bench_with_input(
            BenchmarkId::new("lattice_sweep_72_nodes", n_rows),
            &table,
            |b, t| {
                b.iter(|| {
                    let profiles = profile_adult_lattice(black_box(t), &ks).expect("sweep");
                    let series = figure6(&profiles, &ks, 2);
                    black_box(series)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
