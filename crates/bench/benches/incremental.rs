//! E7 — incremental re-evaluation (Section 3.3.3 closing remark): replacing
//! one bucket should cost `O(k²)` via the prefix/suffix composition versus a
//! full `O(|B|·k²)` MINIMIZE2 rerun (plus `O(k³)` for any new histogram).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_core::{max_disclosure, DisclosureEngine};
use wcbk_datagen::workload::{random_bucketization, WorkloadConfig};

fn bench_incremental(c: &mut Criterion) {
    let k = 8usize;
    for n_buckets in [64usize, 512, 4096] {
        let mut group = c.benchmark_group(format!("incremental_B{n_buckets}"));
        let bucketization = random_bucketization(WorkloadConfig {
            n_buckets,
            bucket_size: (8, 32),
            n_values: 14,
            skew: 1.0,
            seed: 1234,
        });
        let replacement = random_bucketization(WorkloadConfig {
            n_buckets: 1,
            bucket_size: (16, 16),
            n_values: 14,
            skew: 0.5,
            seed: 4321,
        });
        let new_hist = replacement.bucket(0).histogram().clone();

        let engine = DisclosureEngine::new(k);
        let session = engine.incremental(&bucketization).unwrap();
        let new_costs = engine.costs(&new_hist);
        let target = n_buckets / 2;

        group.bench_function(BenchmarkId::new("what_if_replace", k), |b| {
            b.iter(|| black_box(session.what_if_replace(target, &new_costs).unwrap()))
        });

        group.bench_function(BenchmarkId::new("full_recompute", k), |b| {
            b.iter(|| black_box(max_disclosure(black_box(&bucketization), k).unwrap().value))
        });

        group.bench_function(BenchmarkId::new("cached_recompute", k), |b| {
            // Histogram-level caching only (the paper's memo-reuse claim).
            let warm = DisclosureEngine::new(k);
            warm.max_disclosure_value(&bucketization).unwrap();
            b.iter(|| {
                black_box(
                    warm.max_disclosure_value(black_box(&bucketization))
                        .unwrap(),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
