//! E2 — Figure 5 regeneration benchmark: maximum disclosure vs. `k`
//! (implications and negated atoms) on the Adult anonymization with Age in
//! 20-year intervals and all other quasi-identifiers suppressed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wcbk_bench::{figure5_on, small_adult};
use wcbk_hierarchy::adult::{adult_lattice, figure5_node};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);
    for n_rows in [5_000usize, 45_222] {
        let table = small_adult(n_rows);
        let lattice = adult_lattice(&table).expect("adult lattice");
        let bucketization = lattice
            .bucketize(&table, &figure5_node())
            .expect("figure 5 node");
        group.bench_with_input(
            BenchmarkId::new("disclosure_curve_k0_12", n_rows),
            &bucketization,
            |b, bk| {
                b.iter(|| {
                    let rows = figure5_on(black_box(bk), 12).expect("figure 5 series");
                    black_box(rows)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
