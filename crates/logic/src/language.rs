//! Enumeration of the language — atoms, simple implications, and `k`-subsets.
//!
//! These helpers drive the *exhaustive* worst-case searches used to validate
//! Theorem 9 (the DP's restriction to same-consequent simple implications) on
//! small instances, and to brute-force the negated-atom sublanguage.

use crate::{Atom, SimpleImplication};
use wcbk_table::{SValue, TupleId};

/// All atoms `t_p[S]=s` for the given persons over the given value universe.
///
/// The value universe is shared (the sensitive domain `S`); atoms asserting a
/// value that does not occur in a person's bucket are syntactically valid but
/// have probability zero, which the callers handle.
pub fn all_atoms(persons: &[TupleId], values: &[SValue]) -> Vec<Atom> {
    let mut out = Vec::with_capacity(persons.len() * values.len());
    for &p in persons {
        for &v in values {
            out.push(Atom::new(p, v));
        }
    }
    out
}

/// All non-tautological simple implications over `atoms` (ordered pairs with
/// `A ≠ B`).
pub fn all_simple_implications(atoms: &[Atom]) -> Vec<SimpleImplication> {
    let mut out = Vec::with_capacity(atoms.len() * atoms.len().saturating_sub(1));
    for &a in atoms {
        for &b in atoms {
            if a != b {
                out.push(SimpleImplication::new(a, b));
            }
        }
    }
    out
}

/// Iterator over all index combinations `C(n, k)` in lexicographic order.
///
/// Yields each size-`k` subset of `0..n` exactly once as a sorted index
/// vector. `k = 0` yields the single empty subset; `k > n` yields nothing.
#[derive(Debug)]
pub struct Combinations {
    n: usize,
    k: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    /// Creates the iterator over `C(n, k)`.
    pub fn new(n: usize, k: usize) -> Self {
        let state = if k <= n { Some((0..k).collect()) } else { None };
        Self { n, k, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.state.clone()?;
        // Advance to the next combination.
        let state = self.state.as_mut().expect("checked above");
        let mut i = self.k;
        loop {
            if i == 0 {
                self.state = None;
                break;
            }
            i -= 1;
            if state[i] < self.n - (self.k - i) {
                state[i] += 1;
                for j in i + 1..self.k {
                    state[j] = state[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// Calls `visit` with every subset of `items` of size exactly `k`.
pub fn for_each_subset<T: Copy, F: FnMut(&[T])>(items: &[T], k: usize, mut visit: F) {
    let mut buf = Vec::with_capacity(k);
    for combo in Combinations::new(items.len(), k) {
        buf.clear();
        buf.extend(combo.iter().map(|&i| items[i]));
        visit(&buf);
    }
}

/// Calls `visit` with every subset of `items` of size `1..=k`
/// (and the empty set when `k = 0` semantics are needed, pass `include_empty`).
///
/// A conjunction with a repeated implication is equivalent to the conjunction
/// of the distinct ones, so searching subsets of size at most `k` covers all
/// of `L^k` over the given implication universe.
pub fn for_each_subset_up_to<T: Copy, F: FnMut(&[T])>(
    items: &[T],
    k: usize,
    include_empty: bool,
    mut visit: F,
) {
    if include_empty {
        visit(&[]);
    }
    for size in 1..=k {
        for_each_subset(items, size, &mut visit);
    }
}

/// Binomial coefficient with saturation, for sizing exhaustive searches.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_cross_product() {
        let persons = [TupleId(0), TupleId(1)];
        let values = [SValue(0), SValue(1), SValue(2)];
        let atoms = all_atoms(&persons, &values);
        assert_eq!(atoms.len(), 6);
        assert!(atoms.contains(&Atom::new(TupleId(1), SValue(2))));
    }

    #[test]
    fn simple_implications_exclude_tautologies() {
        let atoms = all_atoms(&[TupleId(0)], &[SValue(0), SValue(1)]);
        let imps = all_simple_implications(&atoms);
        assert_eq!(imps.len(), 2); // (a0->a1), (a1->a0)
        assert!(imps.iter().all(|i| !i.is_tautology()));
    }

    #[test]
    fn combinations_count_matches_binomial() {
        for n in 0..7usize {
            for k in 0..=n {
                let count = Combinations::new(n, k).count() as u128;
                assert_eq!(count, binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let all: Vec<Vec<usize>> = Combinations::new(5, 3).collect();
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn combinations_k_zero_and_k_gt_n() {
        assert_eq!(Combinations::new(3, 0).count(), 1);
        assert_eq!(Combinations::new(2, 3).count(), 0);
    }

    #[test]
    fn subsets_up_to_counts() {
        let items = [10, 20, 30];
        let mut seen = Vec::new();
        for_each_subset_up_to(&items, 2, true, |s| seen.push(s.to_vec()));
        // empty + C(3,1) + C(3,2) = 1 + 3 + 3
        assert_eq!(seen.len(), 7);
        assert_eq!(seen[0], Vec::<i32>::new());
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
