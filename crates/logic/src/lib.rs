//! # wcbk-logic — the background-knowledge language
//!
//! Implements Section 2.2 of Martin et al. (ICDE 2007): the propositional
//! language in which an attacker's background knowledge about the sensitive
//! attribute is expressed.
//!
//! * [`Atom`] — `t_p[S] = s` for a person `p` and sensitive value `s`
//!   (Definition 1).
//! * [`BasicImplication`] — `(∧_{i∈[m]} A_i) → (∨_{j∈[n]} B_j)` with
//!   `m, n ≥ 1` (Definition 2), the paper's *basic unit of knowledge*.
//! * [`SimpleImplication`] — `A → B` for single atoms (Definition 7), the
//!   form Theorem 9 shows is sufficient for worst-case analysis.
//! * [`Knowledge`] — a conjunction of basic implications, i.e. a formula of
//!   `L^k_basic` where `k` is the number of conjuncts (Definition 4).
//! * [`Formula`] — a general propositional AST evaluated against *worlds*
//!   (assignments of sensitive values to persons), used by the exact
//!   random-worlds engine.
//! * [`language`] — enumeration helpers (all atoms / simple implications /
//!   subsets) that power exhaustive worst-case searches in tests.
//! * [`parser`] — a human-friendly concrete syntax
//!   (`"t[Hannah]=Flu -> t[Charlie]=Flu"`) with a [`parser::SymbolTable`].
//!
//! A negated atom `¬ t_p[S]=s` — the unit of knowledge used by ℓ-diversity —
//! is representable as the basic implication `(t_p[S]=s) → (t_p[S]=s')` for
//! any `s' ≠ s`, since each tuple has exactly one sensitive value; see
//! [`BasicImplication::negated_atom`].

mod atom;
mod formula;
mod implication;
mod knowledge;
pub mod language;
pub mod parser;

pub use atom::Atom;
pub use formula::{Formula, WorldView};
pub use implication::{BasicImplication, LogicError, SimpleImplication};
pub use knowledge::Knowledge;
