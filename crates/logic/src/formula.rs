//! A general propositional AST over atoms, evaluated against worlds.

use crate::Atom;
use wcbk_table::{SValue, TupleId};

/// Read-only view of a *world*: a total assignment of sensitive values to
/// persons. The exact inference engine and the DP witness checker both
/// evaluate formulas through this trait.
pub trait WorldView {
    /// The sensitive value person `p` has in this world.
    fn value_of(&self, p: TupleId) -> SValue;
}

impl WorldView for Vec<SValue> {
    #[inline]
    fn value_of(&self, p: TupleId) -> SValue {
        self[p.index()]
    }
}

impl WorldView for [SValue] {
    #[inline]
    fn value_of(&self, p: TupleId) -> SValue {
        self[p.index()]
    }
}

impl<W: WorldView + ?Sized> WorldView for &W {
    #[inline]
    fn value_of(&self, p: TupleId) -> SValue {
        (**self).value_of(p)
    }
}

/// A propositional formula over [`Atom`]s.
///
/// The background-knowledge language proper consists of conjunctions of basic
/// implications; `Formula` is the superset used to state and check arbitrary
/// predicates on tables (e.g. for the Theorem 3 completeness construction and
/// the exact inference tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// An atom `t_p[S] = s`.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulas (empty = `True`).
    And(Vec<Formula>),
    /// Disjunction of zero or more formulas (empty = `False`).
    Or(Vec<Formula>),
}

impl Formula {
    /// Conjunction constructor that flattens trivial cases.
    pub fn and<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        let mut v: Vec<Formula> = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::And(inner) => v.extend(inner),
                other => v.push(other),
            }
        }
        match v.len() {
            0 => Formula::True,
            1 => v.pop().expect("len checked"),
            _ => Formula::And(v),
        }
    }

    /// Disjunction constructor that flattens trivial cases.
    pub fn or<I: IntoIterator<Item = Formula>>(parts: I) -> Formula {
        let mut v: Vec<Formula> = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::Or(inner) => v.extend(inner),
                other => v.push(other),
            }
        }
        match v.len() {
            0 => Formula::False,
            1 => v.pop().expect("len checked"),
            _ => Formula::Or(v),
        }
    }

    /// Negation constructor collapsing double negation.
    ///
    /// (Deliberately an associated constructor, not `std::ops::Not`, so the
    /// call site reads `Formula::not(f)` like the other constructors.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Not(inner) => *inner,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Material implication `antecedent → consequent`.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Formula {
        Formula::or([Formula::not(antecedent), consequent])
    }

    /// Evaluates the formula in `world`.
    pub fn eval<W: WorldView + ?Sized>(&self, world: &W) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => world.value_of(a.person) == a.value,
            Formula::Not(f) => !f.eval(world),
            Formula::And(fs) => fs.iter().all(|f| f.eval(world)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(world)),
        }
    }

    /// All persons mentioned by the formula, deduplicated and sorted.
    pub fn persons(&self) -> Vec<TupleId> {
        let mut out = Vec::new();
        self.collect_persons(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_persons(&self, out: &mut Vec<TupleId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.push(a.person),
            Formula::Not(f) => f.collect_persons(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_persons(out);
                }
            }
        }
    }

    /// All atoms mentioned by the formula, deduplicated and sorted.
    ///
    /// The formula's truth in a world depends only on whether each of these
    /// atoms holds — the fact the value-aggregated inference path exploits.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.push(*a),
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
        }
    }
}

impl From<Atom> for Formula {
    fn from(a: Atom) -> Self {
        Formula::Atom(a)
    }
}

impl std::fmt::Display for Formula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(inner) => write!(f, "!({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: u32, v: u32) -> Atom {
        Atom::new(TupleId(p), SValue(v))
    }

    fn w(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    #[test]
    fn atom_eval() {
        let f = Formula::Atom(atom(1, 2));
        assert!(f.eval(&w(&[0, 2])));
        assert!(!f.eval(&w(&[0, 1])));
    }

    #[test]
    fn and_or_flattening() {
        let f = Formula::and([Formula::True, Formula::Atom(atom(0, 0))]);
        assert_eq!(f, Formula::Atom(atom(0, 0)));
        let f = Formula::or([Formula::False]);
        assert_eq!(f, Formula::False);
        let f = Formula::and([]);
        assert_eq!(f, Formula::True);
        let nested = Formula::and([
            Formula::And(vec![Formula::Atom(atom(0, 0)), Formula::Atom(atom(1, 1))]),
            Formula::Atom(atom(2, 2)),
        ]);
        assert!(matches!(&nested, Formula::And(v) if v.len() == 3));
    }

    #[test]
    fn double_negation_collapses() {
        let f = Formula::not(Formula::not(Formula::Atom(atom(0, 0))));
        assert_eq!(f, Formula::Atom(atom(0, 0)));
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn implication_semantics() {
        let f = Formula::implies(Formula::Atom(atom(0, 1)), Formula::Atom(atom(1, 1)));
        assert!(f.eval(&w(&[0, 0]))); // vacuous
        assert!(f.eval(&w(&[1, 1])));
        assert!(!f.eval(&w(&[1, 0])));
    }

    #[test]
    fn persons_collects_unique_sorted() {
        let f = Formula::and([
            Formula::Atom(atom(3, 0)),
            Formula::or([Formula::Atom(atom(1, 0)), Formula::Atom(atom(3, 1))]),
        ]);
        assert_eq!(f.persons(), vec![TupleId(1), TupleId(3)]);
    }

    #[test]
    fn display_nested() {
        let f = Formula::and([
            Formula::Atom(atom(0, 1)),
            Formula::not(Formula::Atom(atom(1, 0))),
        ]);
        assert_eq!(f.to_string(), "(t[0]=1 & !(t[1]=0))");
    }

    #[test]
    fn slice_world_view() {
        let vals = w(&[4, 5]);
        let slice: &[SValue] = &vals;
        assert_eq!(slice.value_of(TupleId(1)), SValue(5));
    }
}
