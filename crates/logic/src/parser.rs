//! Concrete syntax for background knowledge.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! knowledge   := implication (";" implication)*
//! implication := conj "->" disj | "!" atom
//! conj        := atom ("&" atom)*
//! disj        := atom ("|" atom)*
//! atom        := "t[" person "]" "=" value
//! ```
//!
//! `person` and `value` are looked up in a [`SymbolTable`], typically built
//! from a [`wcbk_table::Table`] (persons from an identifier column,
//! values from the sensitive dictionary). `!t[Ed]=Flu` desugars to the basic
//! implication `(t[Ed]=Flu) → (t[Ed]=w)` for some witness value `w ≠ Flu`,
//! per Section 2.2 of the paper.

use std::collections::HashMap;

use crate::{Atom, BasicImplication, Knowledge, LogicError};
use wcbk_table::{SValue, Table, TableError, TupleId};

/// Maps human-readable names to persons and sensitive values.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    persons: HashMap<String, TupleId>,
    person_names: Vec<String>,
    values: HashMap<String, SValue>,
    value_names: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a symbol table from a table: persons are named by the attribute
    /// `person_attr` (must be unique per row), values by the sensitive
    /// dictionary.
    pub fn from_table(table: &Table, person_attr: &str) -> Result<Self, TableError> {
        let name_col = table.column_by_name(person_attr)?;
        let mut st = Self::new();
        for row in 0..table.n_rows() {
            st.add_person(name_col.value(row), TupleId(row as u32));
        }
        for (code, name) in table.sensitive_column().dictionary().iter() {
            st.add_value(name, SValue(code));
        }
        Ok(st)
    }

    /// Registers a person name.
    pub fn add_person(&mut self, name: &str, id: TupleId) {
        self.persons.insert(name.to_owned(), id);
        let idx = id.index();
        if self.person_names.len() <= idx {
            self.person_names.resize(idx + 1, String::new());
        }
        self.person_names[idx] = name.to_owned();
    }

    /// Registers a sensitive-value name.
    pub fn add_value(&mut self, name: &str, v: SValue) {
        self.values.insert(name.to_owned(), v);
        let idx = v.index();
        if self.value_names.len() <= idx {
            self.value_names.resize(idx + 1, String::new());
        }
        self.value_names[idx] = name.to_owned();
    }

    /// Looks up a person by name.
    pub fn person(&self, name: &str) -> Option<TupleId> {
        self.persons.get(name).copied()
    }

    /// Looks up a value by name.
    pub fn value(&self, name: &str) -> Option<SValue> {
        self.values.get(name).copied()
    }

    /// The display name for a person, if registered.
    pub fn person_name(&self, id: TupleId) -> Option<&str> {
        self.person_names
            .get(id.index())
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// The display name for a value, if registered.
    pub fn value_name(&self, v: SValue) -> Option<&str> {
        self.value_names
            .get(v.index())
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// Any registered value different from `v` (the negation witness).
    pub fn witness_other_than(&self, v: SValue) -> Option<SValue> {
        (0..self.value_names.len() as u32)
            .map(SValue)
            .find(|&cand| cand != v && self.value_name(cand).is_some())
    }

    /// Renders an atom with names where available.
    pub fn display_atom(&self, a: &Atom) -> String {
        let p = self
            .person_name(a.person)
            .map(str::to_owned)
            .unwrap_or_else(|| a.person.0.to_string());
        let v = self
            .value_name(a.value)
            .map(str::to_owned)
            .unwrap_or_else(|| a.value.0.to_string());
        format!("t[{p}]={v}")
    }

    /// Renders a basic implication with names where available.
    pub fn display_implication(&self, imp: &BasicImplication) -> String {
        let ants: Vec<String> = imp
            .antecedents()
            .iter()
            .map(|a| self.display_atom(a))
            .collect();
        let cons: Vec<String> = imp
            .consequents()
            .iter()
            .map(|a| self.display_atom(a))
            .collect();
        format!("{} -> {}", ants.join(" & "), cons.join(" | "))
    }
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed syntax with a description.
    Syntax(String),
    /// A person name was not in the symbol table.
    UnknownPerson(String),
    /// A value name was not in the symbol table.
    UnknownValue(String),
    /// The implication violated a structural rule.
    Logic(LogicError),
    /// `!atom` could not be desugared (no second value in the domain).
    NoWitness,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseError::UnknownPerson(p) => write!(f, "unknown person {p:?}"),
            ParseError::UnknownValue(v) => write!(f, "unknown sensitive value {v:?}"),
            ParseError::Logic(e) => write!(f, "{e}"),
            ParseError::NoWitness => {
                write!(
                    f,
                    "cannot negate: sensitive domain has fewer than two values"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LogicError> for ParseError {
    fn from(e: LogicError) -> Self {
        ParseError::Logic(e)
    }
}

/// Parses one implication, e.g. `t[Hannah]=Flu -> t[Charlie]=Flu` or
/// `!t[Ed]=Flu`.
pub fn parse_implication(
    input: &str,
    symbols: &SymbolTable,
) -> Result<BasicImplication, ParseError> {
    let input = input.trim();
    if let Some(rest) = input.strip_prefix('!') {
        let atom = parse_atom(rest.trim(), symbols)?;
        let witness = symbols
            .witness_other_than(atom.value)
            .ok_or(ParseError::NoWitness)?;
        return Ok(BasicImplication::negated_atom(
            atom.person,
            atom.value,
            witness,
        )?);
    }
    let (lhs, rhs) = input
        .split_once("->")
        .ok_or_else(|| ParseError::Syntax(format!("missing '->' in {input:?}")))?;
    let antecedents = lhs
        .split('&')
        .map(|s| parse_atom(s.trim(), symbols))
        .collect::<Result<Vec<_>, _>>()?;
    let consequents = rhs
        .split('|')
        .map(|s| parse_atom(s.trim(), symbols))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BasicImplication::new(antecedents, consequents)?)
}

/// Parses a `;`-separated conjunction of implications.
///
/// ```
/// use wcbk_logic::parser::{parse_knowledge, SymbolTable};
/// use wcbk_table::datasets::hospital_table;
///
/// let table = hospital_table();
/// let symbols = SymbolTable::from_table(&table, "Name")?;
/// let phi = parse_knowledge(
///     "!t[Ed]=Mumps ; t[Hannah]=Flu -> t[Charlie]=Flu",
///     &symbols,
/// ).unwrap();
/// assert_eq!(phi.k(), 2); // a formula of L^2_basic
/// # Ok::<(), wcbk_table::TableError>(())
/// ```
pub fn parse_knowledge(input: &str, symbols: &SymbolTable) -> Result<Knowledge, ParseError> {
    let mut k = Knowledge::none();
    for part in input.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        k.push(parse_implication(part, symbols)?);
    }
    Ok(k)
}

fn parse_atom(input: &str, symbols: &SymbolTable) -> Result<Atom, ParseError> {
    let rest = input
        .strip_prefix("t[")
        .ok_or_else(|| ParseError::Syntax(format!("atom must start with 't[': {input:?}")))?;
    let close = rest
        .find(']')
        .ok_or_else(|| ParseError::Syntax(format!("missing ']' in atom {input:?}")))?;
    let person_name = rest[..close].trim();
    let after = rest[close + 1..].trim_start();
    let value_name = after
        .strip_prefix('=')
        .ok_or_else(|| ParseError::Syntax(format!("missing '=' in atom {input:?}")))?
        .trim();
    if value_name.is_empty() {
        return Err(ParseError::Syntax(format!("empty value in atom {input:?}")));
    }
    let person = symbols
        .person(person_name)
        .ok_or_else(|| ParseError::UnknownPerson(person_name.to_owned()))?;
    let value = symbols
        .value(value_name)
        .ok_or_else(|| ParseError::UnknownValue(value_name.to_owned()))?;
    Ok(Atom::new(person, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::hospital_table;

    fn symbols() -> SymbolTable {
        SymbolTable::from_table(&hospital_table(), "Name").unwrap()
    }

    #[test]
    fn parses_simple_implication() {
        let st = symbols();
        let imp = parse_implication("t[Hannah]=Flu -> t[Charlie]=Flu", &st).unwrap();
        let s = imp.as_simple().unwrap();
        assert_eq!(st.person_name(s.antecedent.person), Some("Hannah"));
        assert_eq!(st.value_name(s.consequent.value), Some("Flu"));
    }

    #[test]
    fn parses_conjunction_and_disjunction() {
        let st = symbols();
        let imp = parse_implication(
            "t[Bob]=Flu & t[Dave]=Mumps -> t[Ed]=Flu | t[Ed]=Lung Cancer",
            &st,
        )
        .unwrap();
        assert_eq!(imp.antecedents().len(), 2);
        assert_eq!(imp.consequents().len(), 2);
    }

    #[test]
    fn parses_negation_sugar() {
        let st = symbols();
        let imp = parse_implication("!t[Ed]=Flu", &st).unwrap();
        let s = imp.as_simple().unwrap();
        assert!(s.is_negation());
        assert_eq!(st.person_name(s.antecedent.person), Some("Ed"));
    }

    #[test]
    fn parses_knowledge_list() {
        let st = symbols();
        let k = parse_knowledge("!t[Ed]=Flu ; t[Hannah]=Flu -> t[Charlie]=Flu", &st).unwrap();
        assert_eq!(k.k(), 2);
    }

    #[test]
    fn unknown_person_and_value() {
        let st = symbols();
        assert_eq!(
            parse_implication("t[Zelda]=Flu -> t[Ed]=Flu", &st),
            Err(ParseError::UnknownPerson("Zelda".into()))
        );
        assert_eq!(
            parse_implication("t[Ed]=Plague -> t[Ed]=Flu", &st),
            Err(ParseError::UnknownValue("Plague".into()))
        );
    }

    #[test]
    fn syntax_errors() {
        let st = symbols();
        assert!(matches!(
            parse_implication("t[Ed]=Flu", &st),
            Err(ParseError::Syntax(_))
        ));
        assert!(matches!(
            parse_implication("tEd=Flu -> t[Ed]=Flu", &st),
            Err(ParseError::Syntax(_))
        ));
        assert!(matches!(
            parse_implication("t[Ed] Flu -> t[Ed]=Flu", &st),
            Err(ParseError::Syntax(_))
        ));
    }

    #[test]
    fn display_round_trip() {
        let st = symbols();
        let text = "t[Hannah]=Flu -> t[Charlie]=Flu";
        let imp = parse_implication(text, &st).unwrap();
        assert_eq!(st.display_implication(&imp), text);
        let reparsed = parse_implication(&st.display_implication(&imp), &st).unwrap();
        assert_eq!(reparsed, imp);
    }

    #[test]
    fn witness_skips_same_value() {
        let mut st = SymbolTable::new();
        st.add_value("only", SValue(0));
        assert_eq!(st.witness_other_than(SValue(0)), None);
        st.add_value("second", SValue(1));
        assert_eq!(st.witness_other_than(SValue(0)), Some(SValue(1)));
        assert_eq!(st.witness_other_than(SValue(1)), Some(SValue(0)));
    }

    #[test]
    fn display_atom_falls_back_to_numbers() {
        let st = SymbolTable::new();
        let a = Atom::new(TupleId(3), SValue(2));
        assert_eq!(st.display_atom(&a), "t[3]=2");
    }
}
