//! Atoms `t_p[S] = s` (Definition 1).

use wcbk_table::{SValue, TupleId};

/// An atom: the statement that person `p`'s tuple has sensitive value `s`.
///
/// Atoms are the alphabet of the background-knowledge language. Because each
/// tuple has exactly one sensitive value, two atoms about the same person with
/// different values are mutually exclusive, and the disjunction of all atoms
/// about a person is a tautology — facts the completeness construction
/// (Theorem 3) exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The person `p` the atom involves.
    pub person: TupleId,
    /// The sensitive value `s` the atom asserts.
    pub value: SValue,
}

impl Atom {
    /// Creates the atom `t_person[S] = value`.
    #[inline]
    pub fn new(person: TupleId, value: SValue) -> Self {
        Self { person, value }
    }

    /// Whether this atom and `other` involve the same person.
    #[inline]
    pub fn same_person(&self, other: &Atom) -> bool {
        self.person == other.person
    }

    /// Whether this atom logically contradicts `other` (same person, different
    /// value — a tuple has exactly one sensitive value).
    #[inline]
    pub fn contradicts(&self, other: &Atom) -> bool {
        self.person == other.person && self.value != other.value
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t[{}]={}", self.person.0, self.value.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(p: u32, v: u32) -> Atom {
        Atom::new(TupleId(p), SValue(v))
    }

    #[test]
    fn display_form() {
        assert_eq!(a(2, 1).to_string(), "t[2]=1");
    }

    #[test]
    fn contradiction_rules() {
        assert!(a(0, 1).contradicts(&a(0, 2)));
        assert!(!a(0, 1).contradicts(&a(0, 1)));
        assert!(!a(0, 1).contradicts(&a(1, 2)));
    }

    #[test]
    fn same_person_check() {
        assert!(a(3, 0).same_person(&a(3, 5)));
        assert!(!a(3, 0).same_person(&a(4, 0)));
    }

    #[test]
    fn atoms_are_ordered_by_person_then_value() {
        assert!(a(0, 5) < a(1, 0));
        assert!(a(1, 0) < a(1, 1));
    }
}
