//! Basic and simple implications (Definitions 2 and 7).

use crate::{Atom, Formula};
use wcbk_table::{SValue, TupleId};

/// Errors constructing language objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A basic implication needs at least one antecedent atom (`m ≥ 1`).
    EmptyAntecedent,
    /// A basic implication needs at least one consequent atom (`n ≥ 1`).
    EmptyConsequent,
    /// `negated_atom` needs a witness value distinct from the negated one.
    DegenerateNegation,
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicError::EmptyAntecedent => {
                write!(f, "basic implication requires at least one antecedent atom")
            }
            LogicError::EmptyConsequent => {
                write!(f, "basic implication requires at least one consequent atom")
            }
            LogicError::DegenerateNegation => write!(
                f,
                "negated atom encoding requires a witness value different from the negated value"
            ),
        }
    }
}

impl std::error::Error for LogicError {}

/// A simple implication `A → B` between two atoms (Definition 7).
///
/// Theorem 9 shows that for any bucketization some set of `k` simple
/// implications sharing a common consequent attains the maximum disclosure
/// over all of `L^k_basic`, so these are the objects the dynamic program
/// reconstructs as witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimpleImplication {
    /// The antecedent atom `A`.
    pub antecedent: Atom,
    /// The consequent atom `B`.
    pub consequent: Atom,
}

impl SimpleImplication {
    /// Creates `antecedent → consequent`.
    pub fn new(antecedent: Atom, consequent: Atom) -> Self {
        Self {
            antecedent,
            consequent,
        }
    }

    /// Whether the implication is a tautology (`A → A`).
    pub fn is_tautology(&self) -> bool {
        self.antecedent == self.consequent
    }

    /// Whether the implication is semantically a negated atom: antecedent and
    /// consequent involve the same person with different values, so it is
    /// equivalent to `¬antecedent`.
    pub fn is_negation(&self) -> bool {
        self.antecedent.contradicts(&self.consequent)
    }

    /// Evaluates under a world (an assignment of values to persons).
    #[inline]
    pub fn holds<W: crate::WorldView>(&self, world: &W) -> bool {
        world.value_of(self.antecedent.person) != self.antecedent.value
            || world.value_of(self.consequent.person) == self.consequent.value
    }
}

impl std::fmt::Display for SimpleImplication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.antecedent, self.consequent)
    }
}

/// A basic implication `(∧_{i∈[m]} A_i) → (∨_{j∈[n]} B_j)`, `m, n ≥ 1`
/// (Definition 2).
///
/// Basic implications are the paper's *basic units of knowledge*: by
/// Theorem 3, any predicate on tables (together with full identification
/// information) is expressible as a finite conjunction of them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BasicImplication {
    antecedents: Vec<Atom>,
    consequents: Vec<Atom>,
}

impl BasicImplication {
    /// Creates a basic implication, validating `m ≥ 1` and `n ≥ 1`.
    pub fn new(antecedents: Vec<Atom>, consequents: Vec<Atom>) -> Result<Self, LogicError> {
        if antecedents.is_empty() {
            return Err(LogicError::EmptyAntecedent);
        }
        if consequents.is_empty() {
            return Err(LogicError::EmptyConsequent);
        }
        Ok(Self {
            antecedents,
            consequents,
        })
    }

    /// Encodes the negated atom `¬ t_person[S] = value` as the implication
    /// `(t_person[S]=value) → (t_person[S]=witness)` for any `witness ≠ value`
    /// (Section 2.2: "each tuple has exactly one sensitive attribute value").
    pub fn negated_atom(
        person: TupleId,
        value: SValue,
        witness: SValue,
    ) -> Result<Self, LogicError> {
        if witness == value {
            return Err(LogicError::DegenerateNegation);
        }
        Self::new(
            vec![Atom::new(person, value)],
            vec![Atom::new(person, witness)],
        )
    }

    /// The antecedent atoms `A_i`.
    pub fn antecedents(&self) -> &[Atom] {
        &self.antecedents
    }

    /// The consequent atoms `B_j`.
    pub fn consequents(&self) -> &[Atom] {
        &self.consequents
    }

    /// Whether this is a simple implication (`m = n = 1`).
    pub fn is_simple(&self) -> bool {
        self.antecedents.len() == 1 && self.consequents.len() == 1
    }

    /// Converts to a [`SimpleImplication`] when `m = n = 1`.
    pub fn as_simple(&self) -> Option<SimpleImplication> {
        if self.is_simple() {
            Some(SimpleImplication::new(
                self.antecedents[0],
                self.consequents[0],
            ))
        } else {
            None
        }
    }

    /// Evaluates under a world.
    pub fn holds<W: crate::WorldView>(&self, world: &W) -> bool {
        let antecedent_holds = self
            .antecedents
            .iter()
            .all(|a| world.value_of(a.person) == a.value);
        if !antecedent_holds {
            return true;
        }
        self.consequents
            .iter()
            .any(|b| world.value_of(b.person) == b.value)
    }

    /// Lowers to a general [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::implies(
            Formula::and(self.antecedents.iter().copied().map(Formula::Atom)),
            Formula::or(self.consequents.iter().copied().map(Formula::Atom)),
        )
    }
}

impl From<SimpleImplication> for BasicImplication {
    fn from(s: SimpleImplication) -> Self {
        BasicImplication {
            antecedents: vec![s.antecedent],
            consequents: vec![s.consequent],
        }
    }
}

impl std::fmt::Display for BasicImplication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.antecedents.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> ")?;
        for (j, b) in self.consequents.iter().enumerate() {
            if j > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: u32, v: u32) -> Atom {
        Atom::new(TupleId(p), SValue(v))
    }

    struct VecWorld(Vec<u32>);
    impl crate::WorldView for VecWorld {
        fn value_of(&self, p: TupleId) -> SValue {
            SValue(self.0[p.index()])
        }
    }

    #[test]
    fn simple_implication_semantics() {
        let imp = SimpleImplication::new(atom(0, 1), atom(1, 2));
        // Antecedent false -> holds vacuously.
        assert!(imp.holds(&VecWorld(vec![0, 0])));
        // Antecedent true, consequent true.
        assert!(imp.holds(&VecWorld(vec![1, 2])));
        // Antecedent true, consequent false.
        assert!(!imp.holds(&VecWorld(vec![1, 0])));
    }

    #[test]
    fn negation_encoding_is_negation() {
        let b = BasicImplication::negated_atom(TupleId(0), SValue(1), SValue(2)).unwrap();
        let s = b.as_simple().unwrap();
        assert!(s.is_negation());
        // ¬(t0 = 1): holds iff t0 != 1 (the consequent witness never rescues,
        // because value 1 and value 2 are mutually exclusive).
        assert!(b.holds(&VecWorld(vec![0])));
        assert!(b.holds(&VecWorld(vec![2])));
        assert!(!b.holds(&VecWorld(vec![1])));
    }

    #[test]
    fn degenerate_negation_rejected() {
        let r = BasicImplication::negated_atom(TupleId(0), SValue(1), SValue(1));
        assert_eq!(r.unwrap_err(), LogicError::DegenerateNegation);
    }

    #[test]
    fn empty_sides_rejected() {
        assert_eq!(
            BasicImplication::new(vec![], vec![atom(0, 0)]).unwrap_err(),
            LogicError::EmptyAntecedent
        );
        assert_eq!(
            BasicImplication::new(vec![atom(0, 0)], vec![]).unwrap_err(),
            LogicError::EmptyConsequent
        );
    }

    #[test]
    fn basic_implication_with_disjunction() {
        // (t0=1 & t1=1) -> (t2=0 | t2=1)
        let b = BasicImplication::new(vec![atom(0, 1), atom(1, 1)], vec![atom(2, 0), atom(2, 1)])
            .unwrap();
        assert!(!b.is_simple());
        assert!(b.as_simple().is_none());
        assert!(b.holds(&VecWorld(vec![1, 1, 0])));
        assert!(b.holds(&VecWorld(vec![1, 1, 1])));
        assert!(!b.holds(&VecWorld(vec![1, 1, 2])));
        assert!(b.holds(&VecWorld(vec![0, 1, 2]))); // vacuous
    }

    #[test]
    fn display_forms() {
        let s = SimpleImplication::new(atom(0, 1), atom(1, 2));
        assert_eq!(s.to_string(), "t[0]=1 -> t[1]=2");
        let b = BasicImplication::new(vec![atom(0, 1), atom(1, 1)], vec![atom(2, 0), atom(2, 1)])
            .unwrap();
        assert_eq!(b.to_string(), "t[0]=1 & t[1]=1 -> t[2]=0 | t[2]=1");
    }

    #[test]
    fn tautology_detection() {
        assert!(SimpleImplication::new(atom(0, 1), atom(0, 1)).is_tautology());
        assert!(!SimpleImplication::new(atom(0, 1), atom(0, 2)).is_tautology());
    }

    #[test]
    fn formula_lowering_agrees_with_holds() {
        let b = BasicImplication::new(vec![atom(0, 1)], vec![atom(1, 0), atom(1, 2)]).unwrap();
        let f = b.to_formula();
        for w in [vec![1, 0], vec![1, 2], vec![1, 1], vec![0, 1]] {
            let world = VecWorld(w);
            assert_eq!(b.holds(&world), f.eval(&world));
        }
    }
}
