//! Conjunctions of basic implications: the language `L^k_basic`
//! (Definition 4).

use crate::{BasicImplication, Formula, SimpleImplication, WorldView};

/// An attacker's background knowledge: a conjunction `∧_{i∈[k]} φ_i` of basic
/// implications, i.e. a formula of `L^k_basic` with `k = self.k()`.
///
/// `k` is the paper's bound on attacker power: the data publisher does not
/// know *which* formula the attacker knows, only that it is expressible with
/// at most `k` basic units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Knowledge {
    implications: Vec<BasicImplication>,
}

impl Knowledge {
    /// The empty conjunction (no background knowledge, `k = 0`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds knowledge from basic implications.
    pub fn from_implications<I: IntoIterator<Item = BasicImplication>>(imps: I) -> Self {
        Self {
            implications: imps.into_iter().collect(),
        }
    }

    /// Builds knowledge from simple implications (the Theorem 9 normal form).
    pub fn from_simple<I: IntoIterator<Item = SimpleImplication>>(imps: I) -> Self {
        Self {
            implications: imps.into_iter().map(BasicImplication::from).collect(),
        }
    }

    /// Adds one more conjunct.
    pub fn push(&mut self, imp: BasicImplication) {
        self.implications.push(imp);
    }

    /// The number of conjuncts `k`.
    pub fn k(&self) -> usize {
        self.implications.len()
    }

    /// Whether there is no knowledge at all.
    pub fn is_empty(&self) -> bool {
        self.implications.is_empty()
    }

    /// The conjuncts.
    pub fn implications(&self) -> &[BasicImplication] {
        &self.implications
    }

    /// Whether every conjunct is a simple implication.
    pub fn is_simple(&self) -> bool {
        self.implications.iter().all(BasicImplication::is_simple)
    }

    /// The conjuncts as simple implications, if all of them are simple.
    pub fn as_simple(&self) -> Option<Vec<SimpleImplication>> {
        self.implications
            .iter()
            .map(BasicImplication::as_simple)
            .collect()
    }

    /// Evaluates the conjunction in `world`.
    pub fn holds<W: WorldView>(&self, world: &W) -> bool {
        self.implications.iter().all(|imp| imp.holds(world))
    }

    /// Lowers to a general [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::and(self.implications.iter().map(BasicImplication::to_formula))
    }
}

impl std::fmt::Display for Knowledge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.implications.is_empty() {
            return write!(f, "(no background knowledge)");
        }
        for (i, imp) in self.implications.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "({imp})")?;
        }
        Ok(())
    }
}

impl FromIterator<BasicImplication> for Knowledge {
    fn from_iter<I: IntoIterator<Item = BasicImplication>>(iter: I) -> Self {
        Self::from_implications(iter)
    }
}

impl FromIterator<SimpleImplication> for Knowledge {
    fn from_iter<I: IntoIterator<Item = SimpleImplication>>(iter: I) -> Self {
        Self::from_simple(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Atom;
    use wcbk_table::{SValue, TupleId};

    fn atom(p: u32, v: u32) -> Atom {
        Atom::new(TupleId(p), SValue(v))
    }

    fn simple(pa: u32, va: u32, pc: u32, vc: u32) -> SimpleImplication {
        SimpleImplication::new(atom(pa, va), atom(pc, vc))
    }

    fn w(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    #[test]
    fn none_is_empty_and_always_holds() {
        let k = Knowledge::none();
        assert!(k.is_empty());
        assert_eq!(k.k(), 0);
        assert!(k.holds(&w(&[0, 1, 2])));
        assert_eq!(k.to_formula(), Formula::True);
    }

    #[test]
    fn conjunction_semantics() {
        let k = Knowledge::from_simple([simple(0, 1, 1, 1), simple(1, 1, 2, 1)]);
        assert_eq!(k.k(), 2);
        assert!(k.holds(&w(&[0, 0, 0]))); // both vacuous
        assert!(k.holds(&w(&[1, 1, 1]))); // chain satisfied
        assert!(!k.holds(&w(&[1, 0, 0]))); // first violated
        assert!(!k.holds(&w(&[1, 1, 0]))); // second violated
    }

    #[test]
    fn as_simple_round_trip() {
        let imps = vec![simple(0, 1, 1, 1), simple(2, 0, 0, 1)];
        let k = Knowledge::from_simple(imps.clone());
        assert!(k.is_simple());
        assert_eq!(k.as_simple().unwrap(), imps);
    }

    #[test]
    fn as_simple_fails_on_disjunctive_consequent() {
        let b = BasicImplication::new(vec![atom(0, 1)], vec![atom(1, 0), atom(1, 1)]).unwrap();
        let k = Knowledge::from_implications([b]);
        assert!(!k.is_simple());
        assert!(k.as_simple().is_none());
    }

    #[test]
    fn formula_lowering_agrees() {
        let k = Knowledge::from_simple([simple(0, 1, 1, 1), simple(1, 1, 2, 1)]);
        let f = k.to_formula();
        for vals in [[0, 0, 0], [1, 1, 1], [1, 0, 0], [1, 1, 0], [0, 1, 2]] {
            let world = w(&vals);
            assert_eq!(k.holds(&world), f.eval(&world));
        }
    }

    #[test]
    fn display_lists_conjuncts() {
        let k = Knowledge::from_simple([simple(0, 1, 1, 1)]);
        assert_eq!(k.to_string(), "(t[0]=1 -> t[1]=1)");
        assert_eq!(Knowledge::none().to_string(), "(no background knowledge)");
    }

    #[test]
    fn collect_from_iterators() {
        let k: Knowledge = [simple(0, 0, 1, 1)].into_iter().collect();
        assert_eq!(k.k(), 1);
    }
}
