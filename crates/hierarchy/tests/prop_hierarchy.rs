//! Property tests for hierarchies and the generalization lattice: nesting,
//! cover relations, and the bridge to the bucketization partial order
//! (finer node ⇒ finer bucketization), which is what makes Theorem 14 apply
//! to full-domain generalization.

use proptest::prelude::*;

use wcbk_core::partial_order::refines;
use wcbk_hierarchy::{GenNode, GeneralizationLattice, Hierarchy};
use wcbk_table::{Attribute, AttributeKind, Dictionary, Schema, Table, TableBuilder};

fn table_from(rows: &[(u8, u8, u8)]) -> Table {
    let schema = Schema::new(vec![
        Attribute::new("A", AttributeKind::QuasiIdentifier),
        Attribute::new("B", AttributeKind::QuasiIdentifier),
        Attribute::new("S", AttributeKind::Sensitive),
    ])
    .unwrap();
    let mut b = TableBuilder::new(schema);
    for &(x, y, s) in rows {
        b.push_row(&[format!("{x}"), format!("{y}"), format!("s{s}")])
            .unwrap();
    }
    b.build()
}

fn lattice_for(table: &Table) -> GeneralizationLattice {
    let a_dict = table.column(0).dictionary().clone();
    let b_dict = table.column(1).dictionary().clone();
    GeneralizationLattice::new(vec![
        (0, Hierarchy::intervals("A", &a_dict, &[2, 4]).unwrap()),
        (1, Hierarchy::suppression("B", &b_dict)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interval hierarchies are nested for divisor-chain widths, for any
    /// value population.
    #[test]
    fn interval_hierarchy_is_nested(values in prop::collection::vec(0i64..200, 1..=30)) {
        let dict = Dictionary::from_values(values.iter().map(|v| v.to_string()));
        let h = Hierarchy::intervals("X", &dict, &[5, 10, 20]).unwrap();
        prop_assert_eq!(h.n_levels(), 5);
        // Nestedness: equal groups stay equal upward.
        for level in 0..h.n_levels() - 1 {
            for a in 0..dict.len() as u32 {
                for b in 0..dict.len() as u32 {
                    if h.generalize(level, a) == h.generalize(level, b) {
                        prop_assert_eq!(
                            h.generalize(level + 1, a),
                            h.generalize(level + 1, b)
                        );
                    }
                }
            }
        }
        // Group counts shrink (weakly) with level.
        for level in 0..h.n_levels() - 1 {
            prop_assert!(h.n_groups(level + 1) <= h.n_groups(level));
        }
    }

    /// successors/predecessors are inverse cover relations and heights are
    /// consistent.
    #[test]
    fn covers_are_inverse(rows in prop::collection::vec((0u8..6, 0u8..3, 0u8..4), 1..=15)) {
        let table = table_from(&rows);
        let lattice = lattice_for(&table);
        for node in lattice.nodes() {
            for s in lattice.successors(&node) {
                prop_assert!(node.le(&s));
                prop_assert_eq!(s.height(), node.height() + 1);
                prop_assert!(lattice.predecessors(&s).contains(&node));
            }
        }
        // Height partition covers all nodes exactly once.
        let total: usize = lattice.nodes_by_height().iter().map(Vec::len).sum();
        prop_assert_eq!(total, lattice.n_nodes());
    }

    /// Finer node (component-wise ≤) induces a bucketization that refines
    /// the coarser node's bucketization — the bridge to Theorem 14.
    #[test]
    fn node_order_implies_bucketization_refinement(
        rows in prop::collection::vec((0u8..6, 0u8..3, 0u8..4), 1..=15),
        da in 0usize..4, db in 0usize..2,
    ) {
        let table = table_from(&rows);
        let lattice = lattice_for(&table);
        let fine = GenNode(vec![da.min(3), db.min(1)]);
        // Coarser node: bump each coordinate (clamped to top).
        let coarse = GenNode(vec![
            (fine.0[0] + 1).min(lattice.hierarchy(0).n_levels() - 1),
            (fine.0[1] + 1).min(lattice.hierarchy(1).n_levels() - 1),
        ]);
        let fb = lattice.bucketize(&table, &fine).unwrap();
        let cb = lattice.bucketize(&table, &coarse).unwrap();
        prop_assert!(refines(&fb, &cb), "fine {fine} coarse {coarse}");
        // And disclosure is monotone across the pair (Theorem 14 end-to-end).
        for k in 0..=2usize {
            let dv_fine = wcbk_core::max_disclosure(&fb, k).unwrap().value;
            let dv_coarse = wcbk_core::max_disclosure(&cb, k).unwrap().value;
            prop_assert!(dv_coarse <= dv_fine + 1e-12);
        }
    }

    /// Bucketizing at bottom groups by exact signature; at top yields one
    /// bucket.
    #[test]
    fn bottom_and_top_bucketizations(rows in prop::collection::vec((0u8..6, 0u8..3, 0u8..4), 1..=15)) {
        let table = table_from(&rows);
        let lattice = lattice_for(&table);
        let bottom = lattice.bucketize(&table, &lattice.bottom()).unwrap();
        let distinct_sigs: std::collections::HashSet<(u8, u8)> =
            rows.iter().map(|&(a, b, _)| (a, b)).collect();
        prop_assert_eq!(bottom.n_buckets(), distinct_sigs.len());
        let top = lattice.bucketize(&table, &lattice.top()).unwrap();
        prop_assert_eq!(top.n_buckets(), 1);
        prop_assert_eq!(top.n_tuples() as usize, rows.len());
    }
}
