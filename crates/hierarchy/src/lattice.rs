//! The product lattice of full-domain generalizations.

use wcbk_core::{Bucketization, CoreError};
use wcbk_table::Table;

use crate::{Hierarchy, HierarchyError};

/// A lattice node: one generalization level per quasi-identifier, in the
/// lattice's attribute order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GenNode(pub Vec<usize>);

impl GenNode {
    /// Sum of levels — the node's height in the lattice (0 = bottom).
    pub fn height(&self) -> usize {
        self.0.iter().sum()
    }

    /// Whether `self ≤ other` component-wise (self is finer or equal).
    pub fn le(&self, other: &GenNode) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl std::fmt::Display for GenNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ">")
    }
}

/// The lattice of generalization vectors over a set of quasi-identifier
/// hierarchies, each tied to a table column.
#[derive(Debug, Clone)]
pub struct GeneralizationLattice {
    /// `(table column index, hierarchy)` per dimension.
    dims: Vec<(usize, Hierarchy)>,
}

impl GeneralizationLattice {
    /// Creates a lattice over `(column, hierarchy)` dimensions.
    pub fn new(dims: Vec<(usize, Hierarchy)>) -> Result<Self, HierarchyError> {
        for (_, h) in &dims {
            if h.n_levels() == 0 {
                return Err(HierarchyError::NoLevels(h.attribute().to_owned()));
            }
        }
        Ok(Self { dims })
    }

    /// Number of dimensions (quasi-identifiers).
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The hierarchy of dimension `d`.
    pub fn hierarchy(&self, d: usize) -> &Hierarchy {
        &self.dims[d].1
    }

    /// The table column index of dimension `d`.
    pub fn column(&self, d: usize) -> usize {
        self.dims[d].0
    }

    /// The bottom node (no generalization).
    pub fn bottom(&self) -> GenNode {
        GenNode(vec![0; self.dims.len()])
    }

    /// The top node (every attribute fully generalized).
    pub fn top(&self) -> GenNode {
        GenNode(self.dims.iter().map(|(_, h)| h.n_levels() - 1).collect())
    }

    /// Total number of nodes (`∏ levels`).
    pub fn n_nodes(&self) -> usize {
        self.dims.iter().map(|(_, h)| h.n_levels()).product()
    }

    /// Maximum height (`Σ (levels − 1)`).
    pub fn max_height(&self) -> usize {
        self.top().height()
    }

    /// Checks a node's dimensionality and levels.
    pub fn validate(&self, node: &GenNode) -> Result<(), HierarchyError> {
        if node.0.len() != self.dims.len() {
            return Err(HierarchyError::DimensionMismatch {
                expected: self.dims.len(),
                found: node.0.len(),
            });
        }
        for (d, (&level, (_, h))) in node.0.iter().zip(&self.dims).enumerate() {
            if level >= h.n_levels() {
                return Err(HierarchyError::LevelOutOfRange {
                    attribute: d,
                    level,
                    n_levels: h.n_levels(),
                });
            }
        }
        Ok(())
    }

    /// All nodes in mixed-radix order (bottom first, top last).
    pub fn nodes(&self) -> Vec<GenNode> {
        let mut out = Vec::with_capacity(self.n_nodes());
        let mut current = vec![0usize; self.dims.len()];
        loop {
            out.push(GenNode(current.clone()));
            // Increment mixed-radix counter, most significant dimension last.
            let mut d = 0;
            loop {
                if d == self.dims.len() {
                    return out;
                }
                current[d] += 1;
                if current[d] < self.dims[d].1.n_levels() {
                    break;
                }
                current[d] = 0;
                d += 1;
            }
        }
    }

    /// All nodes grouped by height — the BFS levels a bottom-up search walks.
    pub fn nodes_by_height(&self) -> Vec<Vec<GenNode>> {
        let mut by_height: Vec<Vec<GenNode>> = vec![Vec::new(); self.max_height() + 1];
        for node in self.nodes() {
            by_height[node.height()].push(node);
        }
        by_height
    }

    /// Immediate successors (one attribute, one level up) — the covers of
    /// `node` in the lattice.
    pub fn successors(&self, node: &GenNode) -> Vec<GenNode> {
        let mut out = Vec::new();
        for d in 0..self.dims.len() {
            if node.0[d] + 1 < self.dims[d].1.n_levels() {
                let mut next = node.0.clone();
                next[d] += 1;
                out.push(GenNode(next));
            }
        }
        out
    }

    /// Immediate predecessors (one attribute, one level down).
    pub fn predecessors(&self, node: &GenNode) -> Vec<GenNode> {
        let mut out = Vec::new();
        for d in 0..self.dims.len() {
            if node.0[d] > 0 {
                let mut prev = node.0.clone();
                prev[d] -= 1;
                out.push(GenNode(prev));
            }
        }
        out
    }

    /// A maximal chain from bottom to top (raise dimension 0 fully, then
    /// dimension 1, …). Every step is a cover, so the chain has
    /// `max_height() + 1` nodes; useful for binary-search demonstrations.
    pub fn maximal_chain(&self) -> Vec<GenNode> {
        let mut chain = vec![self.bottom()];
        let mut current = self.bottom();
        for d in 0..self.dims.len() {
            while current.0[d] + 1 < self.dims[d].1.n_levels() {
                current.0[d] += 1;
                chain.push(current.clone());
            }
        }
        chain
    }

    /// Applies `node` to `table`: tuples with equal generalized
    /// quasi-identifier signatures share a bucket.
    pub fn bucketize(
        &self,
        table: &Table,
        node: &GenNode,
    ) -> Result<Bucketization, HierarchyError> {
        self.validate(node)?;
        Bucketization::from_grouping(table, |t| {
            node.0
                .iter()
                .enumerate()
                .map(|(d, &level)| {
                    let (col, h) = &self.dims[d];
                    h.generalize(level, table.column(*col).code(t.index()))
                })
                .collect::<Vec<u32>>()
        })
        .map_err(|e: CoreError| HierarchyError::Table(e.to_string()))
    }

    /// Applies levels to a *subset* of the dimensions: tuples group by the
    /// generalized signature over `dims` only (the other quasi-identifiers
    /// are ignored, i.e. treated as fully suppressed). This is the
    /// projection Incognito evaluates on attribute subsets.
    ///
    /// `dims[i]` indexes the lattice dimension whose level is `levels[i]`.
    pub fn bucketize_subset(
        &self,
        table: &Table,
        dims: &[usize],
        levels: &[usize],
    ) -> Result<Bucketization, HierarchyError> {
        if dims.len() != levels.len() {
            return Err(HierarchyError::DimensionMismatch {
                expected: dims.len(),
                found: levels.len(),
            });
        }
        for (&d, &level) in dims.iter().zip(levels) {
            if d >= self.dims.len() {
                return Err(HierarchyError::DimensionMismatch {
                    expected: self.dims.len(),
                    found: d + 1,
                });
            }
            if level >= self.dims[d].1.n_levels() {
                return Err(HierarchyError::LevelOutOfRange {
                    attribute: d,
                    level,
                    n_levels: self.dims[d].1.n_levels(),
                });
            }
        }
        Bucketization::from_grouping(table, |t| {
            dims.iter()
                .zip(levels)
                .map(|(&d, &level)| {
                    let (col, h) = &self.dims[d];
                    h.generalize(level, table.column(*col).code(t.index()))
                })
                .collect::<Vec<u32>>()
        })
        .map_err(|e: CoreError| HierarchyError::Table(e.to_string()))
    }

    /// Human-readable generalized signature of a row under `node`.
    pub fn describe_row(&self, table: &Table, node: &GenNode, row: usize) -> Vec<String> {
        node.0
            .iter()
            .enumerate()
            .map(|(d, &level)| {
                let (col, h) = &self.dims[d];
                let code = table.column(*col).code(row);
                h.label(level, h.generalize(level, code)).to_owned()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::hospital_table;
    use wcbk_table::Dictionary;

    fn hospital_lattice() -> (Table, GeneralizationLattice) {
        let table = hospital_table();
        // Columns: 0 Name, 1 Zip, 2 Age, 3 Sex, 4 Disease.
        let zip_dict = table.column(1).dictionary().clone();
        let age_dict = table.column(2).dictionary().clone();
        let sex_dict = table.column(3).dictionary().clone();
        let lattice = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip_dict)),
            (2, Hierarchy::intervals("Age", &age_dict, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex_dict)),
        ])
        .unwrap();
        (table, lattice)
    }

    #[test]
    fn lattice_shape() {
        let (_, l) = hospital_lattice();
        assert_eq!(l.n_dims(), 3);
        assert_eq!(l.n_nodes(), 2 * 3 * 2);
        assert_eq!(l.bottom(), GenNode(vec![0, 0, 0]));
        assert_eq!(l.top(), GenNode(vec![1, 2, 1]));
        assert_eq!(l.max_height(), 4);
    }

    #[test]
    fn nodes_enumerates_all_unique() {
        let (_, l) = hospital_lattice();
        let nodes = l.nodes();
        assert_eq!(nodes.len(), 12);
        let set: std::collections::HashSet<_> = nodes.iter().cloned().collect();
        assert_eq!(set.len(), 12);
        assert_eq!(nodes[0], l.bottom());
        assert_eq!(nodes[nodes.len() - 1], l.top());
    }

    #[test]
    fn nodes_by_height_partitions() {
        let (_, l) = hospital_lattice();
        let by_height = l.nodes_by_height();
        assert_eq!(by_height.iter().map(Vec::len).sum::<usize>(), 12);
        assert_eq!(by_height[0], vec![l.bottom()]);
        assert_eq!(by_height[4], vec![l.top()]);
    }

    #[test]
    fn successors_and_predecessors_are_covers() {
        let (_, l) = hospital_lattice();
        let node = GenNode(vec![0, 1, 1]);
        let succ = l.successors(&node);
        assert_eq!(succ.len(), 2); // Sex already at top
        for s in &succ {
            assert!(node.le(s));
            assert_eq!(s.height(), node.height() + 1);
        }
        let pred = l.predecessors(&node);
        assert_eq!(pred.len(), 2); // Zip already at bottom
        for p in &pred {
            assert!(p.le(&node));
        }
    }

    #[test]
    fn maximal_chain_spans_bottom_to_top() {
        let (_, l) = hospital_lattice();
        let chain = l.maximal_chain();
        assert_eq!(chain.len(), l.max_height() + 1);
        assert_eq!(chain[0], l.bottom());
        assert_eq!(chain[chain.len() - 1], l.top());
        for w in chain.windows(2) {
            assert!(w[0].le(&w[1]));
            assert_eq!(w[1].height(), w[0].height() + 1);
        }
    }

    #[test]
    fn bucketize_top_matches_sex_suppressed_grouping() {
        let (table, l) = hospital_lattice();
        // Fully suppressing everything puts all 10 tuples in one bucket.
        let b = l.bucketize(&table, &l.top()).unwrap();
        assert_eq!(b.n_buckets(), 1);
        assert_eq!(b.n_tuples(), 10);
    }

    #[test]
    fn bucketize_by_sex_only() {
        let (table, l) = hospital_lattice();
        // Suppress zip and age, keep sex: the Figure 2/3 split.
        let node = GenNode(vec![1, 2, 0]);
        let b = l.bucketize(&table, &node).unwrap();
        assert_eq!(b.n_buckets(), 2);
        let sizes: Vec<u64> = b.buckets().iter().map(|x| x.n()).collect();
        assert_eq!(sizes, vec![5, 5]);
    }

    #[test]
    fn coarser_nodes_give_coarser_bucketizations() {
        let (table, l) = hospital_lattice();
        let fine = l.bucketize(&table, &l.bottom()).unwrap();
        let node = GenNode(vec![1, 1, 0]);
        let mid = l.bucketize(&table, &node).unwrap();
        let coarse = l.bucketize(&table, &l.top()).unwrap();
        assert!(wcbk_core::partial_order::refines(&fine, &mid));
        assert!(wcbk_core::partial_order::refines(&mid, &coarse));
    }

    #[test]
    fn validate_rejects_bad_nodes() {
        let (_, l) = hospital_lattice();
        assert!(matches!(
            l.validate(&GenNode(vec![0, 0])),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            l.validate(&GenNode(vec![0, 9, 0])),
            Err(HierarchyError::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn describe_row_uses_labels() {
        let (table, l) = hospital_lattice();
        let node = GenNode(vec![1, 1, 0]);
        let described = l.describe_row(&table, &node, 0); // Bob, 23, M
        assert_eq!(described[0], "*");
        assert_eq!(described[1], "21-25");
        assert_eq!(described[2], "M");
    }

    #[test]
    fn node_display() {
        assert_eq!(GenNode(vec![1, 0, 2]).to_string(), "<1,0,2>");
    }

    #[test]
    fn single_dimension_lattice() {
        let d = Dictionary::from_values(["x", "y"]);
        let l = GeneralizationLattice::new(vec![(0, Hierarchy::suppression("A", &d))]).unwrap();
        assert_eq!(l.n_nodes(), 2);
        assert_eq!(l.maximal_chain().len(), 2);
    }
}
