//! Stable binary serialization for (table, lattice) pairs and lattice nodes.
//!
//! The durable catalog persists a registered dataset as opaque bytes; this
//! module defines those bytes. The format is little-endian, versioned by an
//! 8-byte magic (`WCBKDS01` for datasets, `WCBKGN01` for nodes), and covers
//! exactly the evidence [`crate::dataset_fingerprint`] hashes — schema roles,
//! dictionaries, row codes, and hierarchy level maps/labels — so a decoded
//! dataset fingerprints (and therefore answers) bit-identically to the one
//! that was encoded. It lives next to the fingerprint for the same reason
//! the fingerprint pins its constants: both are cross-process contracts.
//!
//! No compression, no framing: torn-write protection is the store's job
//! (WAL checksums), and dictionary-encoded columns are already compact.

use wcbk_table::{Attribute, AttributeKind, Column, Dictionary, Schema, Table};

use crate::{GenNode, GeneralizationLattice, Hierarchy, HierarchyError};

const DATASET_MAGIC: &[u8; 8] = b"WCBKDS01";
const NODE_MAGIC: &[u8; 8] = b"WCBKGN01";

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_codes(buf: &mut Vec<u8>, codes: &[u32]) {
    put_u64(buf, codes.len() as u64);
    for &c in codes {
        buf.extend_from_slice(&c.to_le_bytes());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], HierarchyError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                HierarchyError::Decode(format!(
                    "truncated input: wanted {n} bytes for {what} at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, HierarchyError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A length that must be realizable within the remaining input, with
    /// `unit` bytes per element — rejects absurd counts before allocating.
    fn len(&mut self, unit: usize, what: &str) -> Result<usize, HierarchyError> {
        let n = self.u64(what)?;
        let budget = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(unit as u64)
            .is_none_or(|total| total > budget)
        {
            return Err(HierarchyError::Decode(format!(
                "{what}: count {n} cannot fit in the {budget} bytes left"
            )));
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &str) -> Result<String, HierarchyError> {
        let n = self.len(1, what)?;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| HierarchyError::Decode(format!("{what}: invalid UTF-8")))
    }

    fn codes(&mut self, what: &str) -> Result<Vec<u32>, HierarchyError> {
        let n = self.len(4, what)?;
        let raw = self.take(n * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn strings(&mut self, what: &str) -> Result<Vec<String>, HierarchyError> {
        let n = self.len(8, what)?;
        (0..n).map(|_| self.str(what)).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn kind_code(kind: AttributeKind) -> u8 {
    // Same numbering the fingerprint mixes; both are pinned together.
    match kind {
        AttributeKind::Identifier => 1,
        AttributeKind::QuasiIdentifier => 2,
        AttributeKind::Sensitive => 3,
        AttributeKind::Insensitive => 4,
    }
}

fn kind_from(code: u8) -> Result<AttributeKind, HierarchyError> {
    Ok(match code {
        1 => AttributeKind::Identifier,
        2 => AttributeKind::QuasiIdentifier,
        3 => AttributeKind::Sensitive,
        4 => AttributeKind::Insensitive,
        other => {
            return Err(HierarchyError::Decode(format!(
                "unknown attribute kind code {other}"
            )))
        }
    })
}

/// Serializes a (table, lattice) pair into the stable dataset format.
pub fn encode_dataset(table: &Table, lattice: &GeneralizationLattice) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(DATASET_MAGIC);
    // Schema: names and roles in column order.
    let schema = table.schema();
    put_u64(&mut buf, schema.arity() as u64);
    for a in schema.attributes() {
        put_str(&mut buf, a.name());
        buf.push(kind_code(a.kind()));
    }
    // Columns: dictionary values (code order) then per-row codes.
    for i in 0..schema.arity() {
        let col = table.column(i);
        put_u64(&mut buf, col.dictionary().len() as u64);
        for v in col.dictionary().values() {
            put_str(&mut buf, v);
        }
        put_codes(&mut buf, col.codes());
    }
    // Lattice dimensions: column index, attribute, per-level maps + labels.
    put_u64(&mut buf, lattice.n_dims() as u64);
    for d in 0..lattice.n_dims() {
        let h = lattice.hierarchy(d);
        put_u64(&mut buf, lattice.column(d) as u64);
        put_str(&mut buf, h.attribute());
        put_u64(&mut buf, h.n_levels() as u64);
        for level in 0..h.n_levels() {
            put_codes(&mut buf, h.level_map(level));
            put_u64(&mut buf, h.n_groups(level) as u64);
            for g in 0..h.n_groups(level) {
                put_str(&mut buf, h.label(level, g as u32));
            }
        }
    }
    buf
}

/// Decodes [`encode_dataset`] output back into a validated (table, lattice)
/// pair. Every constructor invariant is re-checked on the way in (schema
/// well-formedness, code ranges, hierarchy nestedness), so corrupt bytes
/// fail loudly instead of producing a subtly wrong dataset.
pub fn decode_dataset(bytes: &[u8]) -> Result<(Table, GeneralizationLattice), HierarchyError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(8, "dataset magic")? != DATASET_MAGIC {
        return Err(HierarchyError::Decode("dataset magic mismatch".into()));
    }
    let arity = c.len(9, "schema arity")?;
    let mut attributes = Vec::with_capacity(arity);
    for i in 0..arity {
        let name = c.str(&format!("attribute {i} name"))?;
        let kind = kind_from(c.take(1, "attribute kind")?[0])?;
        attributes.push(Attribute::new(name, kind));
    }
    let schema = Schema::new(attributes).map_err(|e| HierarchyError::Table(e.to_string()))?;

    let mut columns = Vec::with_capacity(arity);
    for i in 0..arity {
        let values = {
            let n = c.len(8, &format!("column {i} dictionary size"))?;
            (0..n)
                .map(|_| c.str(&format!("column {i} dictionary value")))
                .collect::<Result<Vec<_>, _>>()?
        };
        let dict = Dictionary::from_values(&values);
        if dict.len() != values.len() {
            return Err(HierarchyError::Decode(format!(
                "column {i} dictionary has duplicate values"
            )));
        }
        let codes = c.codes(&format!("column {i} codes"))?;
        columns.push(
            Column::from_parts(dict, codes).map_err(|e| HierarchyError::Table(e.to_string()))?,
        );
    }
    let table =
        Table::from_parts(schema, columns).map_err(|e| HierarchyError::Table(e.to_string()))?;

    let n_dims = c.len(8, "lattice dims")?;
    let mut dims = Vec::with_capacity(n_dims);
    for d in 0..n_dims {
        let column = c.u64(&format!("dim {d} column"))? as usize;
        if column >= table.schema().arity() {
            return Err(HierarchyError::Decode(format!(
                "dim {d} column {column} out of range"
            )));
        }
        let attribute = c.str(&format!("dim {d} attribute"))?;
        let n_levels = c.len(8, &format!("dim {d} levels"))?;
        let mut maps = Vec::with_capacity(n_levels);
        let mut labels = Vec::with_capacity(n_levels);
        for l in 0..n_levels {
            maps.push(c.codes(&format!("dim {d} level {l} map"))?);
            labels.push(c.strings(&format!("dim {d} level {l} labels"))?);
        }
        dims.push((column, Hierarchy::new(attribute, maps, labels)?));
    }
    let lattice = GeneralizationLattice::new(dims)?;
    if !c.done() {
        return Err(HierarchyError::Decode(
            "trailing bytes after dataset".into(),
        ));
    }
    Ok((table, lattice))
}

/// Serializes a lattice node (one release record in the durable history).
pub fn encode_node(node: &GenNode) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(NODE_MAGIC);
    put_u64(&mut buf, node.0.len() as u64);
    for &level in &node.0 {
        put_u64(&mut buf, level as u64);
    }
    buf
}

/// Decodes [`encode_node`] output. Range validation against a concrete
/// lattice is the caller's job ([`GeneralizationLattice::validate`]).
pub fn decode_node(bytes: &[u8]) -> Result<GenNode, HierarchyError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(8, "node magic")? != NODE_MAGIC {
        return Err(HierarchyError::Decode("node magic mismatch".into()));
    }
    let n = c.len(8, "node dims")?;
    let levels = (0..n)
        .map(|i| c.u64(&format!("node level {i}")).map(|v| v as usize))
        .collect::<Result<Vec<_>, _>>()?;
    if !c.done() {
        return Err(HierarchyError::Decode("trailing bytes after node".into()));
    }
    Ok(GenNode(levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_fingerprint;
    use wcbk_table::datasets::hospital_table;

    fn hospital() -> (Table, GeneralizationLattice) {
        let table = hospital_table();
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let lattice = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
        ])
        .unwrap();
        (table, lattice)
    }

    #[test]
    fn dataset_round_trips_bit_identically() {
        let (table, lattice) = hospital();
        let bytes = encode_dataset(&table, &lattice);
        let (t2, l2) = decode_dataset(&bytes).unwrap();
        assert_eq!(t2, table);
        assert_eq!(
            dataset_fingerprint(&t2, &l2),
            dataset_fingerprint(&table, &lattice)
        );
        // Encoding is deterministic: same input, same bytes.
        assert_eq!(encode_dataset(&t2, &l2), bytes);
    }

    #[test]
    fn node_round_trips() {
        let node = GenNode(vec![0, 3, 1]);
        assert_eq!(decode_node(&encode_node(&node)).unwrap(), node);
        let empty = GenNode(Vec::new());
        assert_eq!(decode_node(&encode_node(&empty)).unwrap(), empty);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let (table, lattice) = hospital();
        let bytes = encode_dataset(&table, &lattice);
        assert!(decode_dataset(b"WCBKXX99 not a dataset").is_err());
        assert!(decode_node(&bytes).is_err());
        // Truncation at every prefix length errors (or, never panics and
        // never succeeds, since the full length is the only valid frame).
        for cut in 0..bytes.len() {
            assert!(decode_dataset(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A flipped byte in a code region is caught by validation.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(decode_dataset(&bad).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        use wcbk_table::TableBuilder;
        let schema = Schema::new(vec![
            Attribute::new("Q", AttributeKind::QuasiIdentifier),
            Attribute::new("S", AttributeKind::Sensitive),
        ])
        .unwrap();
        let table = TableBuilder::new(schema).build();
        let dict = table.column(0).dictionary().clone();
        let lattice =
            GeneralizationLattice::new(vec![(0, Hierarchy::suppression("Q", &dict))]).unwrap();
        let bytes = encode_dataset(&table, &lattice);
        let (t2, _) = decode_dataset(&bytes).unwrap();
        assert_eq!(t2, table);
        assert!(t2.is_empty());
    }
}
