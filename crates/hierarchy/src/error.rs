//! Error type for hierarchy construction.

use std::fmt;

/// Errors building or applying generalization hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// A hierarchy needs at least the identity level.
    NoLevels(String),
    /// Level `level+1` splits a group that level `level` had merged —
    /// the hierarchy is not nested.
    NotNested {
        /// Attribute name.
        attribute: String,
        /// The finer level index.
        level: usize,
    },
    /// A grouping level did not cover some base value.
    UncoveredValue {
        /// Attribute name.
        attribute: String,
        /// The value missing from the level's groups.
        value: String,
    },
    /// A grouping level assigned a base value to two groups.
    DoublyCovered {
        /// Attribute name.
        attribute: String,
        /// The value covered twice.
        value: String,
    },
    /// A base value could not be parsed as an integer for interval building.
    NotNumeric {
        /// Attribute name.
        attribute: String,
        /// The offending value.
        value: String,
    },
    /// Interval widths must be ascending and each divide the next.
    BadWidths(Vec<u64>),
    /// A lattice node's level is out of range for its hierarchy.
    LevelOutOfRange {
        /// Attribute position in the lattice.
        attribute: usize,
        /// Requested level.
        level: usize,
        /// Number of levels available.
        n_levels: usize,
    },
    /// The lattice and node have different dimensionality.
    DimensionMismatch {
        /// Lattice dimension.
        expected: usize,
        /// Node dimension.
        found: usize,
    },
    /// Underlying table error (e.g. unknown attribute name).
    Table(String),
    /// A serialized dataset or node failed to decode (bad magic, truncated
    /// input, values that do not validate).
    Decode(String),
    /// The packed quasi-identifier signature does not fit the roll-up
    /// evaluator's 64-bit signature word (callers fall back to the
    /// row-scanning path).
    SignatureOverflow {
        /// Bits the dimensions would need.
        bits: u32,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::NoLevels(a) => write!(f, "hierarchy for {a:?} has no levels"),
            HierarchyError::NotNested { attribute, level } => write!(
                f,
                "hierarchy for {attribute:?} is not nested between levels {level} and {}",
                level + 1
            ),
            HierarchyError::UncoveredValue { attribute, value } => {
                write!(
                    f,
                    "hierarchy for {attribute:?} does not cover value {value:?}"
                )
            }
            HierarchyError::DoublyCovered { attribute, value } => {
                write!(
                    f,
                    "hierarchy for {attribute:?} covers value {value:?} twice"
                )
            }
            HierarchyError::NotNumeric { attribute, value } => {
                write!(
                    f,
                    "attribute {attribute:?} value {value:?} is not an integer"
                )
            }
            HierarchyError::BadWidths(w) => write!(
                f,
                "interval widths {w:?} must be ascending with each dividing the next"
            ),
            HierarchyError::LevelOutOfRange {
                attribute,
                level,
                n_levels,
            } => write!(
                f,
                "level {level} out of range for attribute {attribute} ({n_levels} levels)"
            ),
            HierarchyError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "node has {found} levels, lattice has {expected} attributes"
                )
            }
            HierarchyError::Table(m) => write!(f, "table error: {m}"),
            HierarchyError::Decode(m) => write!(f, "decode error: {m}"),
            HierarchyError::SignatureOverflow { bits } => write!(
                f,
                "quasi-identifier signature needs {bits} bits (> 64); roll-up unavailable"
            ),
        }
    }
}

impl std::error::Error for HierarchyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = HierarchyError::NotNested {
            attribute: "Age".into(),
            level: 2,
        };
        assert!(e.to_string().contains("Age"));
        assert!(e.to_string().contains('2'));
        assert!(HierarchyError::BadWidths(vec![10, 15])
            .to_string()
            .contains("10, 15"));
    }
}
