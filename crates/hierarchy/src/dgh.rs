//! Domain generalization hierarchies for single attributes.

use wcbk_table::Dictionary;

use crate::HierarchyError;

/// One attribute's domain generalization hierarchy.
///
/// Level 0 is the identity (every base value its own group); the last level
/// is typically full suppression (`*`). Levels must be **nested**: whatever
/// a finer level groups together, coarser levels keep together. This is the
/// standard DGH model of Samarati/Sweeney and Incognito, and it makes the
/// induced bucketizations comparable under the `⪯` partial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    attribute: String,
    /// `maps[l][code]` = group id of base `code` at level `l`.
    maps: Vec<Vec<u32>>,
    /// `labels[l][group]` = display label of the group.
    labels: Vec<Vec<String>>,
}

impl Hierarchy {
    /// Builds a hierarchy from explicit per-level maps, validating shape and
    /// nestedness. `maps[0]` must be the identity.
    pub fn new(
        attribute: impl Into<String>,
        maps: Vec<Vec<u32>>,
        labels: Vec<Vec<String>>,
    ) -> Result<Self, HierarchyError> {
        let attribute = attribute.into();
        if maps.is_empty() || maps.len() != labels.len() {
            return Err(HierarchyError::NoLevels(attribute));
        }
        let h = Self {
            attribute,
            maps,
            labels,
        };
        h.validate()?;
        Ok(h)
    }

    fn validate(&self) -> Result<(), HierarchyError> {
        let n_values = self.maps[0].len();
        // Level 0 must be the identity.
        for (code, &group) in self.maps[0].iter().enumerate() {
            if group as usize != code {
                return Err(HierarchyError::NotNested {
                    attribute: self.attribute.clone(),
                    level: 0,
                });
            }
        }
        for (l, map) in self.maps.iter().enumerate() {
            if map.len() != n_values {
                return Err(HierarchyError::NoLevels(self.attribute.clone()));
            }
            for &g in map {
                if g as usize >= self.labels[l].len() {
                    return Err(HierarchyError::UncoveredValue {
                        attribute: self.attribute.clone(),
                        value: format!("group {g} at level {l}"),
                    });
                }
            }
        }
        // Nestedness: equal groups at level l stay equal at level l+1.
        for l in 0..self.maps.len() - 1 {
            let fine = &self.maps[l];
            let coarse = &self.maps[l + 1];
            let mut coarse_of_group: Vec<Option<u32>> = vec![None; self.labels[l].len()];
            for code in 0..n_values {
                let fg = fine[code] as usize;
                match coarse_of_group[fg] {
                    None => coarse_of_group[fg] = Some(coarse[code]),
                    Some(cg) if cg != coarse[code] => {
                        return Err(HierarchyError::NotNested {
                            attribute: self.attribute.clone(),
                            level: l,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// A two-level hierarchy: identity, then full suppression to `*`.
    pub fn suppression(attribute: impl Into<String>, dict: &Dictionary) -> Self {
        let attribute = attribute.into();
        let n = dict.len();
        let identity: Vec<u32> = (0..n as u32).collect();
        let id_labels: Vec<String> = dict.values().to_vec();
        let suppressed = vec![0u32; n];
        Self {
            attribute,
            maps: vec![identity, suppressed],
            labels: vec![id_labels, vec!["*".to_owned()]],
        }
    }

    /// A numeric interval hierarchy: identity, one level per width in
    /// `widths` (ascending, each dividing the next), then full suppression.
    ///
    /// Intervals are aligned to the minimum value present; a width-`w` group
    /// covering `[lo, lo+w)` is labeled `"lo-hi"` (inclusive `hi`).
    ///
    /// ```
    /// use wcbk_hierarchy::Hierarchy;
    /// use wcbk_table::Dictionary;
    ///
    /// let ages = Dictionary::from_values(["21", "23", "27", "35"]);
    /// let h = Hierarchy::intervals("Age", &ages, &[5, 10])?;
    /// assert_eq!(h.n_levels(), 4); // exact, 5, 10, suppressed
    /// // 21 and 23 share the width-5 interval [21,25]; 27 does not.
    /// let g21 = h.generalize(1, ages.code("21").unwrap());
    /// assert_eq!(g21, h.generalize(1, ages.code("23").unwrap()));
    /// assert_ne!(g21, h.generalize(1, ages.code("27").unwrap()));
    /// assert_eq!(h.label(1, g21), "21-25");
    /// # Ok::<(), wcbk_hierarchy::HierarchyError>(())
    /// ```
    pub fn intervals(
        attribute: impl Into<String>,
        dict: &Dictionary,
        widths: &[u64],
    ) -> Result<Self, HierarchyError> {
        let attribute = attribute.into();
        for w in widths.windows(2) {
            if w[0] == 0 || w[1] % w[0] != 0 || w[1] <= w[0] {
                return Err(HierarchyError::BadWidths(widths.to_vec()));
            }
        }
        if widths.first() == Some(&0) {
            return Err(HierarchyError::BadWidths(widths.to_vec()));
        }
        let mut numeric: Vec<i64> = Vec::with_capacity(dict.len());
        for (_, v) in dict.iter() {
            let parsed = v
                .trim()
                .parse::<i64>()
                .map_err(|_| HierarchyError::NotNumeric {
                    attribute: attribute.clone(),
                    value: v.to_owned(),
                })?;
            numeric.push(parsed);
        }
        let origin = numeric.iter().copied().min().unwrap_or(0);
        let n = dict.len();

        let mut maps = Vec::with_capacity(widths.len() + 2);
        let mut labels = Vec::with_capacity(widths.len() + 2);
        maps.push((0..n as u32).collect());
        labels.push(dict.values().to_vec());
        for &w in widths {
            // Dense group ids in order of interval index.
            let mut group_of_interval: std::collections::HashMap<i64, u32> =
                std::collections::HashMap::new();
            let mut map = Vec::with_capacity(n);
            let mut level_labels: Vec<String> = Vec::new();
            for &x in &numeric {
                let interval = (x - origin).div_euclid(w as i64);
                let next = group_of_interval.len() as u32;
                let g = *group_of_interval.entry(interval).or_insert(next);
                if g as usize == level_labels.len() {
                    let lo = origin + interval * w as i64;
                    level_labels.push(format!("{}-{}", lo, lo + w as i64 - 1));
                }
                map.push(g);
            }
            maps.push(map);
            labels.push(level_labels);
        }
        maps.push(vec![0u32; n]);
        labels.push(vec!["*".to_owned()]);
        Self::new(attribute, maps, labels)
    }

    /// A hierarchy from explicit groupings: each level lists
    /// `(group label, member base values)`; a trailing suppression level is
    /// appended automatically.
    pub fn from_groups(
        attribute: impl Into<String>,
        dict: &Dictionary,
        levels: &[&[(&str, &[&str])]],
    ) -> Result<Self, HierarchyError> {
        let attribute = attribute.into();
        let n = dict.len();
        let mut maps: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        let mut labels: Vec<Vec<String>> = vec![dict.values().to_vec()];
        for groups in levels {
            let mut map = vec![u32::MAX; n];
            let mut level_labels = Vec::with_capacity(groups.len());
            for (gi, (label, members)) in groups.iter().enumerate() {
                level_labels.push((*label).to_owned());
                for member in *members {
                    let code = dict
                        .code(member)
                        .ok_or_else(|| HierarchyError::UncoveredValue {
                            attribute: attribute.clone(),
                            value: (*member).to_owned(),
                        })?;
                    if map[code as usize] != u32::MAX {
                        return Err(HierarchyError::DoublyCovered {
                            attribute: attribute.clone(),
                            value: (*member).to_owned(),
                        });
                    }
                    map[code as usize] = gi as u32;
                }
            }
            if let Some(code) = map.iter().position(|&g| g == u32::MAX) {
                return Err(HierarchyError::UncoveredValue {
                    attribute: attribute.clone(),
                    value: dict.resolve(code as u32).to_owned(),
                });
            }
            maps.push(map);
            labels.push(level_labels);
        }
        maps.push(vec![0u32; n]);
        labels.push(vec!["*".to_owned()]);
        Self::new(attribute, maps, labels)
    }

    /// The attribute this hierarchy generalizes.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Number of levels (≥ 1; level 0 is the identity).
    pub fn n_levels(&self) -> usize {
        self.maps.len()
    }

    /// Generalizes base `code` to its group at `level`.
    #[inline]
    pub fn generalize(&self, level: usize, code: u32) -> u32 {
        self.maps[level][code as usize]
    }

    /// The full base-code → group map at `level` (`maps[level]`): the
    /// generalization code map the roll-up evaluator re-keys signatures
    /// through without touching table rows.
    #[inline]
    pub fn level_map(&self, level: usize) -> &[u32] {
        &self.maps[level]
    }

    /// The parent map from `level` to `level + 1`: `parent[g]` is the
    /// level-`level + 1` group containing level-`level` group `g`. Well
    /// defined because levels are nested; groups no base value maps into
    /// default to parent 0 (they can never appear in a signature).
    pub fn parent_map(&self, level: usize) -> Vec<u32> {
        assert!(
            level + 1 < self.n_levels(),
            "level {level} has no parent level"
        );
        let mut parent = vec![0u32; self.n_groups(level)];
        for (code, &g) in self.maps[level].iter().enumerate() {
            parent[g as usize] = self.maps[level + 1][code];
        }
        parent
    }

    /// Number of groups at `level`.
    pub fn n_groups(&self, level: usize) -> usize {
        self.labels[level].len()
    }

    /// Display label of `group` at `level`.
    pub fn label(&self, level: usize, group: u32) -> &str {
        &self.labels[level][group as usize]
    }

    /// Number of base values mapped into each group at `level` — the
    /// "leaf counts" used by generalization-loss utility metrics.
    pub fn group_sizes(&self, level: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; self.labels[level].len()];
        for &g in &self.maps[level] {
            sizes[g as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age_dict() -> Dictionary {
        Dictionary::from_values(["23", "24", "25", "27", "29", "21", "22", "26", "28"])
    }

    #[test]
    fn suppression_has_two_levels() {
        let d = Dictionary::from_values(["M", "F"]);
        let h = Hierarchy::suppression("Sex", &d);
        assert_eq!(h.n_levels(), 2);
        assert_eq!(h.generalize(0, 0), 0);
        assert_eq!(h.generalize(1, 0), h.generalize(1, 1));
        assert_eq!(h.label(1, 0), "*");
    }

    #[test]
    fn intervals_group_correctly() {
        let d = age_dict();
        let h = Hierarchy::intervals("Age", &d, &[5, 10]).unwrap();
        assert_eq!(h.n_levels(), 4); // identity, 5, 10, *
                                     // Origin is 21; width 5 groups: [21,25], [26,30].
        let g23 = h.generalize(1, d.code("23").unwrap());
        let g25 = h.generalize(1, d.code("25").unwrap());
        let g26 = h.generalize(1, d.code("26").unwrap());
        assert_eq!(g23, g25);
        assert_ne!(g23, g26);
        assert_eq!(h.label(1, g23), "21-25");
        // Width 10 merges everything 21..30.
        let top = h.generalize(2, d.code("21").unwrap());
        for v in ["23", "29", "28"] {
            assert_eq!(h.generalize(2, d.code(v).unwrap()), top);
        }
    }

    #[test]
    fn non_dividing_widths_rejected() {
        let d = age_dict();
        assert_eq!(
            Hierarchy::intervals("Age", &d, &[5, 12]).unwrap_err(),
            HierarchyError::BadWidths(vec![5, 12])
        );
    }

    #[test]
    fn non_numeric_rejected() {
        let d = Dictionary::from_values(["young", "old"]);
        assert!(matches!(
            Hierarchy::intervals("Age", &d, &[5]),
            Err(HierarchyError::NotNumeric { .. })
        ));
    }

    #[test]
    fn from_groups_builds_tree() {
        let d = Dictionary::from_values(["Married", "Divorced", "Widowed", "Never-married"]);
        let h = Hierarchy::from_groups(
            "Marital",
            &d,
            &[&[
                ("Has-married", &["Married", "Divorced", "Widowed"]),
                ("Never", &["Never-married"]),
            ]],
        )
        .unwrap();
        assert_eq!(h.n_levels(), 3);
        assert_eq!(
            h.generalize(1, d.code("Married").unwrap()),
            h.generalize(1, d.code("Widowed").unwrap())
        );
        assert_ne!(
            h.generalize(1, d.code("Married").unwrap()),
            h.generalize(1, d.code("Never-married").unwrap())
        );
        assert_eq!(h.label(1, 0), "Has-married");
    }

    #[test]
    fn uncovered_and_doubly_covered_rejected() {
        let d = Dictionary::from_values(["a", "b"]);
        assert!(matches!(
            Hierarchy::from_groups("X", &d, &[&[("g", &["a"])]]),
            Err(HierarchyError::UncoveredValue { .. })
        ));
        assert!(matches!(
            Hierarchy::from_groups("X", &d, &[&[("g", &["a", "b"]), ("h", &["a"])]]),
            Err(HierarchyError::DoublyCovered { .. })
        ));
    }

    #[test]
    fn non_nested_levels_rejected() {
        // Level 1 merges {0,1}; level 2 splits them again.
        let maps = vec![vec![0, 1], vec![0, 0], vec![0, 1]];
        let labels = vec![
            vec!["a".into(), "b".into()],
            vec!["ab".into()],
            vec!["x".into(), "y".into()],
        ];
        assert!(matches!(
            Hierarchy::new("X", maps, labels),
            Err(HierarchyError::NotNested { level: 1, .. })
        ));
    }

    #[test]
    fn nested_interval_chain_is_accepted() {
        let d = age_dict();
        let h = Hierarchy::intervals("Age", &d, &[5, 10, 20, 40]).unwrap();
        assert_eq!(h.n_levels(), 6);
    }
}
