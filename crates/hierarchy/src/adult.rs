//! The paper's Adult-dataset generalization hierarchies (Section 4).
//!
//! "We use pre-defined generalization hierarchies for the attributes similar
//! to the ones used in \[Incognito\]. Age can be generalized to six levels
//! (unsuppressed, generalized to intervals of size 5, 10, 20, 40, or
//! completely suppressed), Marital Status can be generalized to three levels,
//! and Race and Gender can each either be left as is or be completely
//! suppressed." — giving a 6·3·2·2 = 72-node lattice.

use wcbk_table::Table;

use crate::{GeneralizationLattice, Hierarchy, HierarchyError};

/// Marital-status groups for the middle level of the 3-level hierarchy
/// (Incognito-style: collapse to married / once-married / never-married).
const MARITAL_GROUPS: [(&str, &[&str]); 3] = [
    (
        "Married",
        &[
            "Married-civ-spouse",
            "Married-spouse-absent",
            "Married-AF-spouse",
        ],
    ),
    ("Was-married", &["Divorced", "Separated", "Widowed"]),
    ("Never-married", &["Never-married"]),
];

/// Builds the Age hierarchy: identity, intervals of 5/10/20/40, suppressed.
pub fn age_hierarchy(table: &Table) -> Result<Hierarchy, HierarchyError> {
    let col = table
        .column_by_name("Age")
        .map_err(|e| HierarchyError::Table(e.to_string()))?;
    Hierarchy::intervals("Age", col.dictionary(), &[5, 10, 20, 40])
}

/// Builds the 3-level Marital Status hierarchy. Values not in the canonical
/// Adult domain fall back to their own group at the middle level only if
/// absent from the table (otherwise an error is raised, so typos surface).
pub fn marital_hierarchy(table: &Table) -> Result<Hierarchy, HierarchyError> {
    let col = table
        .column_by_name("Marital-Status")
        .map_err(|e| HierarchyError::Table(e.to_string()))?;
    let dict = col.dictionary();
    // Restrict the canonical groups to the values actually present.
    let mut groups: Vec<(&str, Vec<&str>)> = Vec::new();
    for (label, members) in MARITAL_GROUPS {
        let present: Vec<&str> = members
            .iter()
            .copied()
            .filter(|m| dict.code(m).is_some())
            .collect();
        if !present.is_empty() {
            groups.push((label, present));
        }
    }
    let borrowed: Vec<(&str, &[&str])> = groups.iter().map(|(l, m)| (*l, m.as_slice())).collect();
    Hierarchy::from_groups("Marital-Status", dict, &[&borrowed])
}

/// Builds the 2-level Race hierarchy (identity, suppressed).
pub fn race_hierarchy(table: &Table) -> Result<Hierarchy, HierarchyError> {
    let col = table
        .column_by_name("Race")
        .map_err(|e| HierarchyError::Table(e.to_string()))?;
    Ok(Hierarchy::suppression("Race", col.dictionary()))
}

/// Builds the 2-level Gender hierarchy (identity, suppressed).
pub fn gender_hierarchy(table: &Table) -> Result<Hierarchy, HierarchyError> {
    let col = table
        .column_by_name("Gender")
        .map_err(|e| HierarchyError::Table(e.to_string()))?;
    Ok(Hierarchy::suppression("Gender", col.dictionary()))
}

/// Builds the full 72-node Adult lattice over (Age, Marital-Status, Race,
/// Gender) for a table with the Adult schema.
pub fn adult_lattice(table: &Table) -> Result<GeneralizationLattice, HierarchyError> {
    let schema = table.schema();
    let col = |name: &str| {
        schema
            .index_of(name)
            .map_err(|e| HierarchyError::Table(e.to_string()))
    };
    GeneralizationLattice::new(vec![
        (col("Age")?, age_hierarchy(table)?),
        (col("Marital-Status")?, marital_hierarchy(table)?),
        (col("Race")?, race_hierarchy(table)?),
        (col("Gender")?, gender_hierarchy(table)?),
    ])
}

/// The lattice node used for the paper's Figure 5: "all the attributes other
/// than Age were suppressed and the Age attribute was generalized to
/// intervals of size 20" — Age at level 3, everything else at top
/// (Marital-Status level 2, Race and Gender level 1).
pub fn figure5_node() -> crate::GenNode {
    crate::GenNode(vec![3, 2, 1, 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};

    /// A miniature Adult-shaped table exercising every hierarchy.
    fn mini_adult() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Marital-Status", AttributeKind::QuasiIdentifier),
            Attribute::new("Race", AttributeKind::QuasiIdentifier),
            Attribute::new("Gender", AttributeKind::QuasiIdentifier),
            Attribute::new("Occupation", AttributeKind::Sensitive),
        ])
        .unwrap();
        let rows: Vec<[&str; 5]> = vec![
            ["17", "Never-married", "White", "Male", "Sales"],
            [
                "25",
                "Married-civ-spouse",
                "Black",
                "Female",
                "Tech-support",
            ],
            ["37", "Divorced", "White", "Male", "Craft-repair"],
            ["52", "Widowed", "Asian-Pac-Islander", "Female", "Sales"],
            ["66", "Separated", "White", "Male", "Exec-managerial"],
            ["90", "Married-AF-spouse", "Other", "Female", "Adm-clerical"],
        ];
        let mut b = TableBuilder::new(schema);
        for r in &rows {
            b.push_row(r).unwrap();
        }
        b.build()
    }

    #[test]
    fn lattice_has_72_nodes() {
        let t = mini_adult();
        let l = adult_lattice(&t).unwrap();
        assert_eq!(l.n_nodes(), 6 * 3 * 2 * 2);
        assert_eq!(l.max_height(), 5 + 2 + 1 + 1);
    }

    #[test]
    fn age_levels_match_paper() {
        let t = mini_adult();
        let h = age_hierarchy(&t).unwrap();
        assert_eq!(h.n_levels(), 6);
    }

    #[test]
    fn marital_collapses_to_three_groups() {
        let t = mini_adult();
        let h = marital_hierarchy(&t).unwrap();
        assert_eq!(h.n_levels(), 3);
        let dict = t.column_by_name("Marital-Status").unwrap().dictionary();
        let married = h.generalize(1, dict.code("Married-civ-spouse").unwrap());
        let married_af = h.generalize(1, dict.code("Married-AF-spouse").unwrap());
        let divorced = h.generalize(1, dict.code("Divorced").unwrap());
        let widowed = h.generalize(1, dict.code("Widowed").unwrap());
        assert_eq!(married, married_af);
        assert_eq!(divorced, widowed);
        assert_ne!(married, divorced);
    }

    #[test]
    fn figure5_node_is_valid() {
        let t = mini_adult();
        let l = adult_lattice(&t).unwrap();
        l.validate(&figure5_node()).unwrap();
        // Age intervals of width 20 → level 3 in the 6-level hierarchy
        // (identity=0, 5=1, 10=2, 20=3, 40=4, *=5).
        let b = l.bucketize(&t, &figure5_node()).unwrap();
        // Ages 17..90 with origin 17: intervals [17,36],[37,56],[57,76],[77,96]
        assert_eq!(b.n_buckets(), 4);
    }

    #[test]
    fn race_and_gender_are_binary() {
        let t = mini_adult();
        assert_eq!(race_hierarchy(&t).unwrap().n_levels(), 2);
        assert_eq!(gender_hierarchy(&t).unwrap().n_levels(), 2);
    }

    #[test]
    fn missing_column_is_reported() {
        let schema = Schema::new(vec![
            Attribute::new("Years", AttributeKind::QuasiIdentifier),
            Attribute::new("Occupation", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(&["30", "Sales"]).unwrap();
        let t = b.build();
        assert!(matches!(age_hierarchy(&t), Err(HierarchyError::Table(_))));
    }
}
