//! One-scan roll-up evaluation of lattice nodes.
//!
//! The paper's Section 3.3.3 complexity story is that re-analyzing a
//! bucketization sharing buckets with an already-analyzed one should cost
//! only the *new* buckets. The generalization lattice has exactly that
//! structure: a coarser node's buckets are unions of a finer node's buckets,
//! so its sensitive histograms are mergeable in `O(buckets)` without touching
//! table rows. [`NodeEvaluator`] exploits this:
//!
//! * Construction scans the table **once**, packing each row's base
//!   quasi-identifier codes into a single integer signature (no per-row heap
//!   allocation) and tallying sensitive counts per distinct signature — the
//!   bottom node's group table. Signatures are `u64` when the packed fields
//!   fit 64 bits and `u128` up to 128 bits; wider tables fail with
//!   [`HierarchyError::SignatureOverflow`] and callers fall back to the
//!   legacy re-scanning path.
//! * Any other node's histograms are derived without row access: from a
//!   memoized immediate predecessor by re-keying one dimension one level up,
//!   or — when eviction or out-of-order (work-stealing, speculative)
//!   evaluation has left no immediate predecessor behind — from the
//!   **coarsest retained ancestor**, re-keying each differing dimension
//!   through a composed parent map. The bottom table is always retained, so
//!   a source always exists. Either way the cost is `O(groups × dims)`, not
//!   `O(rows × dims)`.
//! * The memo is **weight-bounded** (see
//!   [`NodeEvaluator::with_memo_capacity`]): the budget counts retained
//!   *groups* (each group ≈ one packed signature plus its sparse sensitive
//!   counts — the actual bytes a node table holds), not entries, so one huge
//!   near-bottom table can't hide behind the same cap as a handful of tiny
//!   near-top ones. Past the budget the least-recently-touched node table is
//!   evicted, so deep lattices don't hold every node's group table.
//!   Derivation sources are a cache, not a correctness input — any ancestor
//!   yields bit-identical histograms in the same first-row-occurrence bucket
//!   order, so eviction never changes results.
//! * Results are [`HistogramSet`]s — the histogram-only surface `wcbk-core`'s
//!   criteria evaluate — in **exactly** the bucket order
//!   [`GeneralizationLattice::bucketize`] produces (first row occurrence),
//!   with identical histograms, so search outcomes are bit-for-bit the same.
//!
//! The evaluator is `Sync` (memo behind an `RwLock`, counters atomic), so
//! one instance serves all workers of the parallel lattice search.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use wcbk_core::{CoreError, HistogramSet, SensitiveHistogram};
use wcbk_table::{SValue, Table};

use crate::scan::{self, MergeTallies, ScanResult, SigMap, Signature};
use crate::{GenNode, GeneralizationLattice, Hierarchy, HierarchyError};

/// Tuning for the single bottom-table scan a [`NodeEvaluator`] performs at
/// construction. Every setting is **bit-neutral**: the scan's output (and
/// therefore every histogram downstream) is identical at any thread count,
/// chunk size, or kernel choice — only throughput varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanOptions {
    /// Worker threads for the chunked scan. `0` picks the machine's
    /// available parallelism; `1` runs the kernel on the calling thread.
    /// Small tables (a single chunk) never spawn regardless.
    pub threads: usize,
    /// Rows per scan chunk (`0` = default 65 536).
    pub chunk_rows: usize,
    /// Use the pre-kernel row-at-a-time scan instead of the chunked
    /// columnar kernel — the equivalence/throughput baseline for tests and
    /// `bench_report --scale`.
    pub reference: bool,
}

impl ScanOptions {
    /// The thread count `0` resolves to: one worker per available core.
    fn effective_threads(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// One node's grouped view: packed signature and sparse sensitive counts per
/// bucket, in first-row-occurrence order (the `bucketize` bucket order).
#[derive(Debug, Clone)]
struct NodeTable<S> {
    sigs: Vec<S>,
    /// `(value, count)` pairs sorted by value code, per bucket.
    counts: Vec<Vec<(SValue, u64)>>,
}

impl<S: Signature> NodeTable<S> {
    /// Groups `source`'s entries under re-keyed signatures, merging counts.
    /// First-occurrence order over `source` entries preserves the row
    /// first-occurrence bucket order transitively — from *any* ancestor, so
    /// the derivation source never affects results.
    ///
    /// Group lookup is an open-addressed [`SigMap`]; count rows merge as
    /// dense arrays (small sensitive domains) or linear runs over the
    /// already-sorted source rows — no hash re-insertion on either side.
    fn derive(source: &NodeTable<S>, domain: usize, rekey: impl Fn(S) -> S) -> NodeTable<S> {
        let mut index = SigMap::with_capacity(source.sigs.len());
        let mut tallies = MergeTallies::new(domain);
        for (i, &sig) in source.sigs.iter().enumerate() {
            let gi = index.get_or_insert(rekey(sig));
            tallies.add_sorted(gi, &source.counts[i]);
        }
        NodeTable {
            sigs: index.into_sigs(),
            counts: tallies.finish(),
        }
    }

    fn histogram_set(&self, domain_size: u32) -> Result<HistogramSet, HierarchyError> {
        if self.sigs.is_empty() {
            // Mirror `bucketize` on an empty table, which fails building the
            // (empty) partition.
            return Err(HierarchyError::Table(
                CoreError::EmptyBucketization.to_string(),
            ));
        }
        let histograms: Vec<SensitiveHistogram> = self
            .counts
            .iter()
            .map(|c| SensitiveHistogram::from_counts(c.iter().copied()))
            .collect();
        HistogramSet::new(histograms, domain_size).map_err(|e| HierarchyError::Table(e.to_string()))
    }
}

/// Counters describing how much work the roll-up pipeline actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupStats {
    /// Full table scans performed (always 1 — at construction).
    pub table_scans: u64,
    /// Node tables derived by merging (i.e. evaluated without row access).
    pub derived: u64,
    /// Derivations that could not re-key a memoized immediate predecessor
    /// and fell back to a retained (possibly bottom) ancestor instead.
    pub ancestor_derived: u64,
    /// Node evaluations answered straight from the memo.
    pub memo_hits: u64,
    /// Memoized node tables evicted to respect the group budget.
    pub evictions: u64,
    /// Node tables currently memoized (bottom excluded; it is kept
    /// separately and never evicted).
    pub memo_entries: usize,
    /// Total groups currently retained across memoized tables — the
    /// byte-ish weight the memo budget bounds (each group holds one packed
    /// signature plus its sparse sensitive counts). Bottom excluded.
    pub memo_groups: u64,
    /// Distinct signatures at the lattice bottom (the scan's output size).
    pub bottom_groups: usize,
    /// Wall-clock microseconds the construction-time bottom scan took.
    /// Schedule/machine-dependent: equivalence tests must not compare it.
    pub scan_micros: u64,
    /// Cumulative wall-clock microseconds spent deriving node tables
    /// (re-keying and merging, the `O(groups × dims)` roll-up work).
    pub derive_micros: u64,
}

/// A memoized node table plus its last-touch tick for LRU eviction.
struct MemoEntry<S> {
    table: Arc<NodeTable<S>>,
    touch: AtomicU64,
}

/// The memo map plus the maintenance state kept in lockstep with it: a
/// by-height index so ancestor lookups never scan the whole map, and the
/// total retained group weight the eviction budget bounds.
struct Memo<S> {
    entries: HashMap<GenNode, MemoEntry<S>>,
    /// Height → memoized nodes at that height. The coarsest-retained-
    /// ancestor lookup walks heights downward from the target and stops at
    /// the first `⪯`-comparable node, instead of scanning every entry under
    /// the read lock.
    by_height: BTreeMap<usize, HashSet<GenNode>>,
    /// Σ group count over `entries` — the weight [`RollupStats::memo_groups`]
    /// reports and the budget bounds.
    groups: u64,
}

impl<S> Memo<S> {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            by_height: BTreeMap::new(),
            groups: 0,
        }
    }

    fn insert(&mut self, node: GenNode, entry: MemoEntry<S>, weight: u64) {
        self.groups += weight;
        self.by_height
            .entry(node.height())
            .or_default()
            .insert(node.clone());
        self.entries.insert(node, entry);
    }

    fn remove(&mut self, node: &GenNode) {
        if let Some(entry) = self.entries.remove(node) {
            self.groups -= entry.table.sigs.len() as u64;
            let height = node.height();
            if let Some(set) = self.by_height.get_mut(&height) {
                set.remove(node);
                if set.is_empty() {
                    self.by_height.remove(&height);
                }
            }
        }
    }
}

/// The signature-width-generic core of [`NodeEvaluator`].
struct RollupEngine<S> {
    /// The lattice the evaluator serves. Held by `Arc` so an evaluator can
    /// be **owned** alongside its lattice by long-lived callers (a
    /// `DatasetSession`) instead of borrowing from the stack.
    lattice: Arc<GeneralizationLattice>,
    domain_size: u32,
    /// Bit offset of each dimension's field within a packed signature.
    shifts: Vec<u32>,
    /// Field mask (already shifted down) of each dimension.
    masks: Vec<u64>,
    /// `parent_maps[d][l]`: dimension `d`'s level-`l` → level-`l+1` map.
    parent_maps: Vec<Vec<Vec<u32>>>,
    /// The bottom node's table, built by the single scan. Never evicted, so
    /// ancestor derivation always has a source.
    bottom: Arc<NodeTable<S>>,
    memo: RwLock<Memo<S>>,
    /// Group budget for `memo` (`None` = unbounded): total retained groups
    /// across memoized tables may not exceed it.
    capacity: Option<u64>,
    /// Monotone tick supplying `MemoEntry::touch` values.
    clock: AtomicU64,
    derived: AtomicU64,
    ancestor_derived: AtomicU64,
    memo_hits: AtomicU64,
    evictions: AtomicU64,
    /// Wall time of the construction-time bottom scan, in microseconds.
    scan_micros: u64,
    /// Per-chunk scan wall times in chunk index order (one entry for the
    /// reference or single-chunk scan).
    scan_chunk_micros: Vec<u64>,
    /// Cumulative derivation wall time, in microseconds.
    derive_micros: AtomicU64,
}

/// The per-dimension field layout, shared by both signature widths.
struct Layout {
    shifts: Vec<u32>,
    masks: Vec<u64>,
    total_bits: u32,
}

fn layout(lattice: &GeneralizationLattice) -> Layout {
    let n_dims = lattice.n_dims();
    let mut shifts = Vec::with_capacity(n_dims);
    let mut masks = Vec::with_capacity(n_dims);
    let mut total_bits: u32 = 0;
    for d in 0..n_dims {
        let h = lattice.hierarchy(d);
        // The field must hold group ids of *every* level (re-keying
        // writes coarser ids into the same slot).
        let max_groups = (0..h.n_levels()).map(|l| h.n_groups(l)).max().unwrap_or(1);
        let bits = bits_for(max_groups);
        shifts.push(total_bits);
        masks.push(if bits == 0 { 0 } else { (!0u64) >> (64 - bits) });
        total_bits += bits;
    }
    Layout {
        shifts,
        masks,
        total_bits,
    }
}

impl<S: Signature> RollupEngine<S> {
    /// Builds the engine with exactly one scan over `table`; the caller has
    /// already checked that `layout.total_bits <= S::BITS`.
    fn new(
        table: &Table,
        lattice: Arc<GeneralizationLattice>,
        layout: Layout,
        capacity: Option<usize>,
        scan: ScanOptions,
    ) -> Self {
        let n_dims = lattice.n_dims();
        debug_assert!(layout.total_bits <= S::BITS);
        let parent_maps: Vec<Vec<Vec<u32>>> = (0..n_dims)
            .map(|d| {
                let h: &Hierarchy = lattice.hierarchy(d);
                (0..h.n_levels() - 1).map(|l| h.parent_map(l)).collect()
            })
            .collect();

        // The single columnar scan: pack base codes, tally sensitive values.
        let columns: Vec<&[u32]> = (0..n_dims)
            .map(|d| table.column(lattice.column(d)).codes())
            .collect();
        let sensitive = table.sensitive_column().codes();
        let domain = table.sensitive_cardinality();
        let scan_started = std::time::Instant::now();
        let ScanResult {
            sigs,
            counts,
            chunk_micros,
        } = if scan.reference {
            scan::scan_reference::<S>(&columns, &layout.shifts, &layout.masks, sensitive)
        } else {
            scan::scan_kernel::<S>(
                &columns,
                &layout.shifts,
                sensitive,
                domain,
                scan.chunk_rows,
                scan.effective_threads(),
            )
        };
        let scan_micros = scan_started.elapsed().as_micros() as u64;
        let bottom = Arc::new(NodeTable { sigs, counts });

        Self {
            lattice,
            domain_size: table.sensitive_cardinality() as u32,
            shifts: layout.shifts,
            masks: layout.masks,
            parent_maps,
            bottom,
            memo: RwLock::new(Memo::new()),
            capacity: capacity.map(|c| (c as u64).max(1)),
            clock: AtomicU64::new(0),
            derived: AtomicU64::new(0),
            ancestor_derived: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            scan_micros,
            scan_chunk_micros: chunk_micros,
            derive_micros: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> RollupStats {
        let (memo_entries, memo_groups) = {
            let memo = self.memo.read().expect("rollup memo poisoned");
            (memo.entries.len(), memo.groups)
        };
        RollupStats {
            table_scans: 1,
            derived: self.derived.load(Ordering::Relaxed),
            ancestor_derived: self.ancestor_derived.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            memo_entries,
            memo_groups,
            bottom_groups: self.bottom.sigs.len(),
            scan_micros: self.scan_micros,
            derive_micros: self.derive_micros.load(Ordering::Relaxed),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn histograms(&self, node: &GenNode) -> Result<HistogramSet, HierarchyError> {
        self.lattice.validate(node)?;
        self.node_table(node).histogram_set(self.domain_size)
    }

    fn histograms_subset(
        &self,
        dims: &[usize],
        levels: &[usize],
    ) -> Result<HistogramSet, HierarchyError> {
        let maps: Vec<(usize, &[u32])> = dims
            .iter()
            .zip(levels)
            .map(|(&d, &level)| (d, self.lattice.hierarchy(d).level_map(level)))
            .collect();
        let derive_started = std::time::Instant::now();
        let table = NodeTable::derive(&self.bottom, self.domain_size as usize, |sig| {
            let mut out = S::zero();
            for &(d, map) in &maps {
                let base = sig.field(self.shifts[d], self.masks[d]);
                out = out.with_field(self.shifts[d], self.masks[d], map[base]);
            }
            out
        });
        self.derive_micros.fetch_add(
            derive_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        self.derived.fetch_add(1, Ordering::Relaxed);
        table.histogram_set(self.domain_size)
    }

    /// The map taking dimension `d`'s level-`from` group ids to level-`to`
    /// ids: a stored single-step parent map, the hierarchy's base-level map,
    /// or a fold of the parent maps in between.
    fn cross_map(&self, d: usize, from: usize, to: usize) -> Cow<'_, [u32]> {
        debug_assert!(from < to);
        if to == from + 1 {
            return Cow::Borrowed(&self.parent_maps[d][from]);
        }
        if from == 0 {
            return Cow::Borrowed(self.lattice.hierarchy(d).level_map(to));
        }
        let mut map = self.parent_maps[d][from].clone();
        for l in from + 1..to {
            let step = &self.parent_maps[d][l];
            for g in map.iter_mut() {
                *g = step[*g as usize];
            }
        }
        Cow::Owned(map)
    }

    /// Fetches or derives `node`'s group table. Prefers re-keying a single
    /// dimension of a memoized immediate predecessor (`O(groups)`); falls
    /// back to the coarsest retained ancestor — ultimately the bottom table,
    /// which is never evicted.
    fn node_table(&self, node: &GenNode) -> Arc<NodeTable<S>> {
        if node.height() == 0 {
            return Arc::clone(&self.bottom);
        }
        // Source selection: memoized node itself → immediate predecessor →
        // coarsest retained ancestor → bottom.
        let mut source: Option<(Arc<NodeTable<S>>, GenNode)> = None;
        {
            let memo = self.memo.read().expect("rollup memo poisoned");
            if let Some(e) = memo.entries.get(node) {
                e.touch.store(self.tick(), Ordering::Relaxed);
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&e.table);
            }
            for d in 0..self.lattice.n_dims() {
                if node.0[d] == 0 {
                    continue;
                }
                let mut pred = node.clone();
                pred.0[d] -= 1;
                if pred.height() == 0 {
                    source = Some((Arc::clone(&self.bottom), pred));
                    break;
                }
                if let Some(e) = memo.entries.get(&pred) {
                    e.touch.store(self.tick(), Ordering::Relaxed);
                    source = Some((Arc::clone(&e.table), pred));
                    break;
                }
            }
            if source.is_none() {
                // Coarsest retained ancestor: any memoized strictly-finer
                // node works (derivation is source-independent); the highest
                // one needs the fewest merge steps. Walk the by-height index
                // downward and stop at the first `⪯`-comparable node — no
                // full-memo scan under the read lock. (A comparable node at
                // equal height would be `node` itself, already missed, so
                // strictly lower heights suffice.)
                'heights: for (_, nodes) in memo.by_height.range(..node.height()).rev() {
                    for cand in nodes {
                        if cand.le(node) {
                            let entry = &memo.entries[cand];
                            entry.touch.store(self.tick(), Ordering::Relaxed);
                            source = Some((Arc::clone(&entry.table), cand.clone()));
                            break 'heights;
                        }
                    }
                }
                self.ancestor_derived.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (src_table, src_node) =
            source.unwrap_or_else(|| (Arc::clone(&self.bottom), self.lattice.bottom()));

        // Re-key every dimension whose level differs, through (possibly
        // composed) parent maps.
        let derive_started = std::time::Instant::now();
        let maps: Vec<(u32, u64, Cow<'_, [u32]>)> = (0..self.lattice.n_dims())
            .filter(|&d| src_node.0[d] < node.0[d])
            .map(|d| {
                (
                    self.shifts[d],
                    self.masks[d],
                    self.cross_map(d, src_node.0[d], node.0[d]),
                )
            })
            .collect();
        let table = NodeTable::derive(&src_table, self.domain_size as usize, |sig| {
            let mut out = sig;
            for (shift, mask, map) in &maps {
                let group = out.field(*shift, *mask);
                out = out.with_field(*shift, *mask, map[group]);
            }
            out
        });
        self.derive_micros.fetch_add(
            derive_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        self.derived.fetch_add(1, Ordering::Relaxed);
        self.insert_memo(node.clone(), Arc::new(table))
    }

    /// Inserts under the group budget, evicting least-recently-touched
    /// tables (by total retained *group* count, the actual size, not entry
    /// count) until the newcomer fits. A table that alone exceeds the whole
    /// budget is served unmemoized rather than evicting everything for
    /// nothing. (The bottom table lives outside the memo and is exempt.)
    fn insert_memo(&self, node: GenNode, table: Arc<NodeTable<S>>) -> Arc<NodeTable<S>> {
        let weight = table.sigs.len() as u64;
        let mut memo = self.memo.write().expect("rollup memo poisoned");
        if let Some(existing) = memo.entries.get(&node) {
            // Lost a race with a concurrent deriver: keep the first insert.
            existing.touch.store(self.tick(), Ordering::Relaxed);
            return Arc::clone(&existing.table);
        }
        if let Some(budget) = self.capacity {
            if weight > budget {
                // It can never fit: don't flush everything else first.
                return table;
            }
            while memo.groups + weight > budget && !memo.entries.is_empty() {
                let victim = memo
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.touch.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        memo.remove(&k);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
            if memo.groups + weight > budget {
                return table;
            }
        }
        let touch = self.tick();
        memo.insert(
            node,
            MemoEntry {
                table: Arc::clone(&table),
                touch: AtomicU64::new(touch),
            },
            weight,
        );
        table
    }
}

/// The two signature widths an evaluator can run at.
enum Inner {
    Narrow(RollupEngine<u64>),
    Wide(RollupEngine<u128>),
}

/// Evaluates lattice nodes from one columnar table scan plus histogram
/// roll-ups — see the module docs.
///
/// The evaluator **owns** its lattice (behind an [`Arc`]), so it can
/// outlive the stack frame that built it — the shape long-lived dataset
/// sessions need to reuse one scan across many audits.
pub struct NodeEvaluator {
    inner: Inner,
}

impl NodeEvaluator {
    /// Builds the evaluator with exactly one scan over `table` and an
    /// unbounded memo (every derived node table is retained). The lattice
    /// is cloned into the evaluator; use [`NodeEvaluator::shared`] to hand
    /// over an existing [`Arc`] instead.
    ///
    /// Fails with [`HierarchyError::SignatureOverflow`] when the packed
    /// per-row signature does not fit 128 bits (callers then fall back to
    /// the row-scanning `bucketize` path).
    pub fn new(table: &Table, lattice: &GeneralizationLattice) -> Result<Self, HierarchyError> {
        Self::with_memo_capacity(table, lattice, None)
    }

    /// [`NodeEvaluator::new`] with a **group budget** on memoized node
    /// tables: `capacity = Some(n)` retains derived tables totalling at most
    /// `n.max(1)` groups (a group ≈ one packed signature plus its sparse
    /// sensitive counts — the actual bytes a table holds), evicting the
    /// least recently touched until the newcomer fits; a table that alone
    /// exceeds the whole budget is served unmemoized. Derivations that miss
    /// every immediate predecessor re-key the coarsest retained ancestor (at
    /// worst the bottom table, which is held outside the budget), so results
    /// are identical at any capacity — only derivation cost varies.
    pub fn with_memo_capacity(
        table: &Table,
        lattice: &GeneralizationLattice,
        capacity: Option<usize>,
    ) -> Result<Self, HierarchyError> {
        Self::shared(table, Arc::new(lattice.clone()), capacity)
    }

    /// [`NodeEvaluator::with_memo_capacity`] over a lattice the caller
    /// already shares by [`Arc`] — no clone, and the evaluator can be moved
    /// into long-lived owners alongside that `Arc`.
    pub fn shared(
        table: &Table,
        lattice: Arc<GeneralizationLattice>,
        capacity: Option<usize>,
    ) -> Result<Self, HierarchyError> {
        Self::shared_with_scan(table, lattice, capacity, ScanOptions::default())
    }

    /// [`NodeEvaluator::shared`] with explicit [`ScanOptions`] for the
    /// construction-time bottom scan. All settings are bit-neutral — the
    /// evaluator's results are identical at any thread count or chunk size;
    /// only construction throughput varies.
    pub fn shared_with_scan(
        table: &Table,
        lattice: Arc<GeneralizationLattice>,
        capacity: Option<usize>,
        scan: ScanOptions,
    ) -> Result<Self, HierarchyError> {
        let l = layout(&lattice);
        let inner = if l.total_bits <= u64::BITS {
            Inner::Narrow(RollupEngine::new(table, lattice, l, capacity, scan))
        } else if l.total_bits <= u128::BITS {
            Inner::Wide(RollupEngine::new(table, lattice, l, capacity, scan))
        } else {
            return Err(HierarchyError::SignatureOverflow { bits: l.total_bits });
        };
        Ok(Self { inner })
    }

    /// The lattice this evaluator serves.
    pub fn lattice(&self) -> &GeneralizationLattice {
        match &self.inner {
            Inner::Narrow(e) => &e.lattice,
            Inner::Wide(e) => &e.lattice,
        }
    }

    /// Whether signatures are packed into `u64` (`false`: the `u128`
    /// wide-table fallback is active).
    pub fn is_narrow(&self) -> bool {
        matches!(self.inner, Inner::Narrow(_))
    }

    /// Work counters (scan count, derivations, memo traffic, evictions).
    pub fn stats(&self) -> RollupStats {
        match &self.inner {
            Inner::Narrow(e) => e.stats(),
            Inner::Wide(e) => e.stats(),
        }
    }

    /// Per-chunk wall times of the construction-time bottom scan, in chunk
    /// index order (a single entry when the scan ran as one chunk or via
    /// the reference path). Sums to roughly CPU time, not wall time, when
    /// chunks ran in parallel.
    pub fn scan_chunk_micros(&self) -> &[u64] {
        match &self.inner {
            Inner::Narrow(e) => &e.scan_chunk_micros,
            Inner::Wide(e) => &e.scan_chunk_micros,
        }
    }

    /// The histograms `node` induces, in `bucketize` bucket order — derived
    /// by roll-up, never by re-scanning the table.
    pub fn histograms(&self, node: &GenNode) -> Result<HistogramSet, HierarchyError> {
        match &self.inner {
            Inner::Narrow(e) => e.histograms(node),
            Inner::Wide(e) => e.histograms(node),
        }
    }

    /// The histograms of the projection onto `dims` at `levels` (the
    /// Incognito subset evaluation) — a single roll-up from the bottom
    /// table; other dimensions are treated as fully suppressed.
    pub fn histograms_subset(
        &self,
        dims: &[usize],
        levels: &[usize],
    ) -> Result<HistogramSet, HierarchyError> {
        let lattice = self.lattice();
        if dims.len() != levels.len() {
            return Err(HierarchyError::DimensionMismatch {
                expected: dims.len(),
                found: levels.len(),
            });
        }
        for (&d, &level) in dims.iter().zip(levels) {
            if d >= lattice.n_dims() {
                return Err(HierarchyError::DimensionMismatch {
                    expected: lattice.n_dims(),
                    found: d + 1,
                });
            }
            if level >= lattice.hierarchy(d).n_levels() {
                return Err(HierarchyError::LevelOutOfRange {
                    attribute: d,
                    level,
                    n_levels: lattice.hierarchy(d).n_levels(),
                });
            }
        }
        match &self.inner {
            Inner::Narrow(e) => e.histograms_subset(dims, levels),
            Inner::Wide(e) => e.histograms_subset(dims, levels),
        }
    }
}

/// Bits needed to represent group ids `0..n` (0 for a single-group domain).
fn bits_for(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::hospital_table;

    fn hospital_lattice() -> (Table, GeneralizationLattice) {
        let table = hospital_table();
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        let lattice = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap();
        (table, lattice)
    }

    /// The roll-up result must equal the scan result at EVERY node: same
    /// bucket count, same bucket order, same histograms.
    #[test]
    fn rollup_matches_bucketize_at_every_node() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        for node in lattice.nodes() {
            let rolled = eval.histograms(&node).unwrap();
            let scanned = lattice.bucketize(&table, &node).unwrap();
            assert_eq!(rolled.n_buckets(), scanned.n_buckets(), "node {node}");
            assert_eq!(rolled.domain_size(), scanned.domain_size());
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                assert_eq!(
                    &rolled.histograms()[i],
                    bucket.histogram(),
                    "node {node} bucket {i}"
                );
            }
        }
    }

    #[test]
    fn single_scan_and_derivations_counted() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        for node in lattice.nodes() {
            eval.histograms(&node).unwrap();
        }
        // Repeat: everything above the bottom now memoized.
        for node in lattice.nodes() {
            eval.histograms(&node).unwrap();
        }
        let stats = eval.stats();
        assert_eq!(stats.table_scans, 1);
        assert_eq!(stats.derived as usize, lattice.n_nodes() - 1);
        assert_eq!(stats.memo_hits as usize, lattice.n_nodes() - 1);
        assert_eq!(stats.memo_entries, lattice.n_nodes() - 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.bottom_groups, 10); // hospital rows are all distinct
                                             // Unbounded memo: the retained weight is the sum of every derived
                                             // table's group count — at least one group per entry, at most the
                                             // bottom's group count each.
        assert!(stats.memo_groups >= stats.memo_entries as u64);
        assert!(stats.memo_groups <= (stats.memo_entries * stats.bottom_groups) as u64);
    }

    /// A budgeted memo evicts, falls back to ancestor derivation, and still
    /// produces histograms identical to `bucketize` at every node — in any
    /// evaluation order. The budget counts retained groups, so entries ≤
    /// groups ≤ budget throughout.
    #[test]
    fn capped_memo_evicts_and_stays_correct() {
        let (table, lattice) = hospital_lattice();
        let mut total_evictions = 0u64;
        for cap in [1usize, 2, 3, 8] {
            let eval = NodeEvaluator::with_memo_capacity(&table, &lattice, Some(cap)).unwrap();
            // Top-down order maximizes memo misses (predecessors evaluated
            // after successors), then bottom-up for coverage.
            let mut nodes = lattice.nodes();
            nodes.reverse();
            let forward = lattice.nodes();
            for node in nodes.iter().chain(&forward) {
                let rolled = eval.histograms(node).unwrap();
                let scanned = lattice.bucketize(&table, node).unwrap();
                assert_eq!(rolled.n_buckets(), scanned.n_buckets(), "cap {cap} {node}");
                for (i, bucket) in scanned.buckets().iter().enumerate() {
                    assert_eq!(
                        &rolled.histograms()[i],
                        bucket.histogram(),
                        "cap {cap} node {node} bucket {i}"
                    );
                }
            }
            let stats = eval.stats();
            assert!(stats.memo_groups <= cap as u64, "cap {cap}: {stats:?}");
            assert!(stats.memo_entries as u64 <= stats.memo_groups);
            // A cap that admits only one table may legitimately never evict
            // (oversized tables bail out before touching the memo), so
            // eviction is asserted across the cap sweep, not per cap.
            total_evictions += stats.evictions;
            assert!(
                stats.ancestor_derived > 0,
                "cap {cap} never used the ancestor fallback: {stats:?}"
            );
        }
        assert!(total_evictions > 0, "no cap in the sweep ever evicted");
    }

    /// The budget is weighed in groups, not entries: a table bigger than the
    /// whole budget is served unmemoized (it would evict everything and
    /// still not fit), while small coarse tables are retained and re-served.
    #[test]
    fn group_weight_budget_skips_oversized_tables() {
        let (table, lattice) = hospital_lattice();
        let budget = 5usize;
        let eval = NodeEvaluator::with_memo_capacity(&table, &lattice, Some(budget)).unwrap();
        let fine = lattice
            .nodes()
            .into_iter()
            .find(|n| n.height() > 0 && lattice.bucketize(&table, n).unwrap().n_buckets() > budget)
            .expect("hospital lattice has a non-bottom node with > 5 buckets");
        eval.histograms(&fine).unwrap();
        let after_fine = eval.stats();
        assert_eq!(after_fine.memo_entries, 0, "{after_fine:?}");
        assert_eq!(after_fine.memo_groups, 0, "{after_fine:?}");
        // The top table (1 group) fits, is memoized, and is re-served.
        eval.histograms(&lattice.top()).unwrap();
        assert_eq!(eval.stats().memo_entries, 1);
        let hits_before = eval.stats().memo_hits;
        eval.histograms(&lattice.top()).unwrap();
        let stats = eval.stats();
        assert_eq!(stats.memo_hits, hits_before + 1);
        assert!(stats.memo_groups <= budget as u64, "{stats:?}");
        // A second oversized derivation must not flush what is retained:
        // it can never fit, so nothing is evicted for it.
        eval.histograms(&fine).unwrap();
        let stats = eval.stats();
        assert_eq!(stats.memo_entries, 1, "{stats:?}");
        assert_eq!(stats.evictions, 0, "{stats:?}");
    }

    /// `Some(0)` behaves as a 1-group budget rather than thrashing or
    /// panicking.
    #[test]
    fn zero_capacity_is_clamped() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::with_memo_capacity(&table, &lattice, Some(0)).unwrap();
        for node in lattice.nodes() {
            let rolled = eval.histograms(&node).unwrap();
            let scanned = lattice.bucketize(&table, &node).unwrap();
            assert_eq!(rolled.n_buckets(), scanned.n_buckets());
        }
        assert!(eval.stats().memo_entries <= 1);
    }

    #[test]
    fn subset_matches_bucketize_subset() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0], vec![0]),
            (vec![1], vec![1]),
            (vec![2], vec![0]),
            (vec![0, 2], vec![1, 0]),
            (vec![0, 1, 2], vec![0, 2, 1]),
        ];
        for (dims, levels) in cases {
            let rolled = eval.histograms_subset(&dims, &levels).unwrap();
            let scanned = lattice.bucketize_subset(&table, &dims, &levels).unwrap();
            assert_eq!(
                rolled.n_buckets(),
                scanned.n_buckets(),
                "{dims:?}/{levels:?}"
            );
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                assert_eq!(&rolled.histograms()[i], bucket.histogram());
            }
        }
    }

    #[test]
    fn validates_nodes_and_subsets() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        assert!(matches!(
            eval.histograms(&GenNode(vec![0, 0])),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms(&GenNode(vec![0, 9, 0])),
            Err(HierarchyError::LevelOutOfRange { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[0, 1], &[0]),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[7], &[0]),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[1], &[9]),
            Err(HierarchyError::LevelOutOfRange { .. })
        ));
    }

    /// 65–128 bits of packed codes now run on the `u128` representation
    /// instead of falling back to row scans: 70 copies of the 1-bit Sex
    /// dimension must produce `bucketize`-identical histograms.
    #[test]
    fn wide_signatures_use_u128() {
        let table = hospital_table();
        let sex = table.column(3).dictionary().clone();
        let dims: Vec<(usize, Hierarchy)> = (0..70)
            .map(|_| (3usize, Hierarchy::suppression("Sex", &sex)))
            .collect();
        let lattice = GeneralizationLattice::new(dims).unwrap();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        assert!(!eval.is_narrow(), "70 bits should select the u128 engine");
        // The full 2^70-node lattice is unenumerable; spot-check a mixed
        // sample of nodes against the row-scanning baseline.
        let mut nodes = vec![lattice.bottom(), lattice.top()];
        nodes.push(GenNode((0..70).map(|d| usize::from(d % 2 == 0)).collect()));
        nodes.push(GenNode((0..70).map(|d| usize::from(d < 35)).collect()));
        nodes.push(GenNode((0..70).map(|d| usize::from(d == 69)).collect()));
        for node in &nodes {
            let rolled = eval.histograms(node).unwrap();
            let scanned = lattice.bucketize(&table, node).unwrap();
            assert_eq!(rolled.n_buckets(), scanned.n_buckets(), "node {node}");
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                assert_eq!(&rolled.histograms()[i], bucket.histogram(), "{node}/{i}");
            }
        }
        assert_eq!(eval.stats().table_scans, 1);
    }

    #[test]
    fn narrow_signatures_stay_u64() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        assert!(eval.is_narrow());
    }

    /// Beyond 128 bits the evaluator still fails cleanly (callers fall back
    /// to the row-scanning path).
    #[test]
    fn very_wide_signatures_overflow_cleanly() {
        let table = hospital_table();
        let sex = table.column(3).dictionary().clone();
        let dims: Vec<(usize, Hierarchy)> = (0..130)
            .map(|_| (3usize, Hierarchy::suppression("Sex", &sex)))
            .collect();
        let lattice = GeneralizationLattice::new(dims).unwrap();
        assert!(matches!(
            NodeEvaluator::new(&table, &lattice),
            Err(HierarchyError::SignatureOverflow { bits: 130 })
        ));
    }

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
    }
}
