//! One-scan roll-up evaluation of lattice nodes.
//!
//! The paper's Section 3.3.3 complexity story is that re-analyzing a
//! bucketization sharing buckets with an already-analyzed one should cost
//! only the *new* buckets. The generalization lattice has exactly that
//! structure: a coarser node's buckets are unions of a finer node's buckets,
//! so its sensitive histograms are mergeable in `O(buckets)` without touching
//! table rows. [`NodeEvaluator`] exploits this:
//!
//! * Construction scans the table **once**, packing each row's base
//!   quasi-identifier codes into a single `u64` signature (no per-row heap
//!   allocation) and tallying sensitive counts per distinct signature — the
//!   bottom node's group table.
//! * Any other node's histograms are derived without row access: from a
//!   memoized immediate predecessor by re-keying one dimension through its
//!   [`Hierarchy::parent_map`], or from the bottom table by re-keying every
//!   dimension through its [`Hierarchy::level_map`]. Either way the cost is
//!   `O(groups × dims)`, not `O(rows × dims)`.
//! * Results are [`HistogramSet`]s — the histogram-only surface `wcbk-core`'s
//!   criteria evaluate — in **exactly** the bucket order
//!   [`GeneralizationLattice::bucketize`] produces (first row occurrence),
//!   with identical histograms, so search outcomes are bit-for-bit the same.
//!
//! The evaluator is `Sync` (memo behind an `RwLock`, counters atomic), so
//! one instance serves all workers of the parallel lattice search.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use wcbk_core::{CoreError, HistogramSet, SensitiveHistogram};
use wcbk_table::{SValue, Table};

use crate::{GenNode, GeneralizationLattice, Hierarchy, HierarchyError};

/// One node's grouped view: packed signature and sparse sensitive counts per
/// bucket, in first-row-occurrence order (the `bucketize` bucket order).
#[derive(Debug, Clone)]
struct NodeTable {
    sigs: Vec<u64>,
    /// `(value, count)` pairs sorted by value code, per bucket.
    counts: Vec<Vec<(SValue, u64)>>,
}

impl NodeTable {
    /// Groups `source`'s entries under re-keyed signatures, merging counts.
    /// First-occurrence order over `source` entries preserves the row
    /// first-occurrence bucket order transitively.
    fn derive(source: &NodeTable, rekey: impl Fn(u64) -> u64) -> NodeTable {
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(source.sigs.len());
        let mut sigs: Vec<u64> = Vec::new();
        let mut tallies: Vec<HashMap<SValue, u64>> = Vec::new();
        for (i, &sig) in source.sigs.iter().enumerate() {
            let new_sig = rekey(sig);
            let gi = *index.entry(new_sig).or_insert_with(|| {
                sigs.push(new_sig);
                tallies.push(HashMap::new());
                sigs.len() - 1
            });
            for &(v, c) in &source.counts[i] {
                *tallies[gi].entry(v).or_insert(0) += c;
            }
        }
        NodeTable {
            sigs,
            counts: tallies.into_iter().map(sorted_counts).collect(),
        }
    }

    fn histogram_set(&self, domain_size: u32) -> Result<HistogramSet, HierarchyError> {
        if self.sigs.is_empty() {
            // Mirror `bucketize` on an empty table, which fails building the
            // (empty) partition.
            return Err(HierarchyError::Table(
                CoreError::EmptyBucketization.to_string(),
            ));
        }
        let histograms: Vec<SensitiveHistogram> = self
            .counts
            .iter()
            .map(|c| SensitiveHistogram::from_counts(c.iter().copied()))
            .collect();
        HistogramSet::new(histograms, domain_size).map_err(|e| HierarchyError::Table(e.to_string()))
    }
}

fn sorted_counts(tally: HashMap<SValue, u64>) -> Vec<(SValue, u64)> {
    let mut v: Vec<(SValue, u64)> = tally.into_iter().collect();
    v.sort_unstable_by_key(|&(value, _)| value);
    v
}

/// Counters describing how much work the roll-up pipeline actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupStats {
    /// Full table scans performed (always 1 — at construction).
    pub table_scans: u64,
    /// Node tables derived by merging (i.e. evaluated without row access).
    pub derived: u64,
    /// Node evaluations answered straight from the memo.
    pub memo_hits: u64,
    /// Distinct signatures at the lattice bottom (the scan's output size).
    pub bottom_groups: usize,
}

/// Evaluates lattice nodes from one columnar table scan plus histogram
/// roll-ups — see the module docs.
pub struct NodeEvaluator<'a> {
    lattice: &'a GeneralizationLattice,
    domain_size: u32,
    /// Bit offset of each dimension's field within a packed signature.
    shifts: Vec<u32>,
    /// Field mask (already shifted down) of each dimension.
    masks: Vec<u64>,
    /// `parent_maps[d][l]`: dimension `d`'s level-`l` → level-`l+1` map.
    parent_maps: Vec<Vec<Vec<u32>>>,
    /// The bottom node's table, built by the single scan.
    bottom: Arc<NodeTable>,
    memo: RwLock<HashMap<GenNode, Arc<NodeTable>>>,
    derived: AtomicU64,
    memo_hits: AtomicU64,
}

impl<'a> NodeEvaluator<'a> {
    /// Builds the evaluator with exactly one scan over `table`.
    ///
    /// Fails with [`HierarchyError::SignatureOverflow`] when the packed
    /// per-row signature does not fit 64 bits (callers then fall back to the
    /// row-scanning `bucketize` path).
    pub fn new(table: &Table, lattice: &'a GeneralizationLattice) -> Result<Self, HierarchyError> {
        let n_dims = lattice.n_dims();
        let mut shifts = Vec::with_capacity(n_dims);
        let mut masks = Vec::with_capacity(n_dims);
        let mut total_bits: u32 = 0;
        for d in 0..n_dims {
            let h = lattice.hierarchy(d);
            // The field must hold group ids of *every* level (re-keying
            // writes coarser ids into the same slot).
            let max_groups = (0..h.n_levels()).map(|l| h.n_groups(l)).max().unwrap_or(1);
            let bits = bits_for(max_groups);
            shifts.push(total_bits);
            masks.push(if bits == 0 { 0 } else { (!0u64) >> (64 - bits) });
            total_bits += bits;
        }
        if total_bits > 64 {
            return Err(HierarchyError::SignatureOverflow { bits: total_bits });
        }

        let parent_maps: Vec<Vec<Vec<u32>>> = (0..n_dims)
            .map(|d| {
                let h: &Hierarchy = lattice.hierarchy(d);
                (0..h.n_levels() - 1).map(|l| h.parent_map(l)).collect()
            })
            .collect();

        // The single columnar scan: pack base codes, tally sensitive values.
        let mut index: HashMap<u64, usize> = HashMap::new();
        let mut sigs: Vec<u64> = Vec::new();
        let mut tallies: Vec<HashMap<SValue, u64>> = Vec::new();
        let columns: Vec<&[u32]> = (0..n_dims)
            .map(|d| table.column(lattice.column(d)).codes())
            .collect();
        for row in 0..table.n_rows() {
            let mut sig = 0u64;
            for (d, codes) in columns.iter().enumerate() {
                sig |= u64::from(codes[row]) << shifts[d];
            }
            let gi = *index.entry(sig).or_insert_with(|| {
                sigs.push(sig);
                tallies.push(HashMap::new());
                sigs.len() - 1
            });
            *tallies[gi]
                .entry(table.sensitive_value(wcbk_table::TupleId(row as u32)))
                .or_insert(0) += 1;
        }
        let bottom = Arc::new(NodeTable {
            sigs,
            counts: tallies.into_iter().map(sorted_counts).collect(),
        });

        Ok(Self {
            lattice,
            domain_size: table.sensitive_cardinality() as u32,
            shifts,
            masks,
            parent_maps,
            bottom,
            memo: RwLock::new(HashMap::new()),
            derived: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
        })
    }

    /// The lattice this evaluator serves.
    pub fn lattice(&self) -> &GeneralizationLattice {
        self.lattice
    }

    /// Work counters (scan count, derivations, memo hits).
    pub fn stats(&self) -> RollupStats {
        RollupStats {
            table_scans: 1,
            derived: self.derived.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            bottom_groups: self.bottom.sigs.len(),
        }
    }

    /// The histograms `node` induces, in `bucketize` bucket order — derived
    /// by roll-up, never by re-scanning the table.
    pub fn histograms(&self, node: &GenNode) -> Result<HistogramSet, HierarchyError> {
        self.lattice.validate(node)?;
        self.node_table(node).histogram_set(self.domain_size)
    }

    /// The histograms of the projection onto `dims` at `levels` (the
    /// Incognito subset evaluation) — a single roll-up from the bottom
    /// table; other dimensions are treated as fully suppressed.
    pub fn histograms_subset(
        &self,
        dims: &[usize],
        levels: &[usize],
    ) -> Result<HistogramSet, HierarchyError> {
        if dims.len() != levels.len() {
            return Err(HierarchyError::DimensionMismatch {
                expected: dims.len(),
                found: levels.len(),
            });
        }
        for (&d, &level) in dims.iter().zip(levels) {
            if d >= self.lattice.n_dims() {
                return Err(HierarchyError::DimensionMismatch {
                    expected: self.lattice.n_dims(),
                    found: d + 1,
                });
            }
            if level >= self.lattice.hierarchy(d).n_levels() {
                return Err(HierarchyError::LevelOutOfRange {
                    attribute: d,
                    level,
                    n_levels: self.lattice.hierarchy(d).n_levels(),
                });
            }
        }
        let maps: Vec<(usize, &[u32])> = dims
            .iter()
            .zip(levels)
            .map(|(&d, &level)| (d, self.lattice.hierarchy(d).level_map(level)))
            .collect();
        let table = NodeTable::derive(&self.bottom, |sig| {
            let mut out = 0u64;
            for &(d, map) in &maps {
                let base = (sig >> self.shifts[d]) & self.masks[d];
                out |= u64::from(map[base as usize]) << self.shifts[d];
            }
            out
        });
        self.derived.fetch_add(1, Ordering::Relaxed);
        table.histogram_set(self.domain_size)
    }

    /// Fetches or derives `node`'s group table. Prefers re-keying a single
    /// dimension of a memoized immediate predecessor (`O(groups)`); falls
    /// back to re-keying every dimension of the bottom table.
    fn node_table(&self, node: &GenNode) -> Arc<NodeTable> {
        if node.height() == 0 {
            return Arc::clone(&self.bottom);
        }
        if let Some(t) = self.memo.read().expect("rollup memo poisoned").get(node) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }

        // A memoized immediate predecessor lets us re-key one dimension.
        let mut source: Option<(Arc<NodeTable>, usize)> = None;
        {
            let memo = self.memo.read().expect("rollup memo poisoned");
            for d in 0..self.lattice.n_dims() {
                if node.0[d] == 0 {
                    continue;
                }
                let mut pred = node.clone();
                pred.0[d] -= 1;
                if pred.height() == 0 {
                    source = Some((Arc::clone(&self.bottom), d));
                    break;
                }
                if let Some(t) = memo.get(&pred) {
                    source = Some((Arc::clone(t), d));
                    break;
                }
            }
        }

        let table = match source {
            Some((pred_table, d)) => {
                let parent = &self.parent_maps[d][node.0[d] - 1];
                let shift = self.shifts[d];
                let mask = self.masks[d];
                NodeTable::derive(&pred_table, |sig| {
                    let group = (sig >> shift) & mask;
                    (sig & !(mask << shift)) | (u64::from(parent[group as usize]) << shift)
                })
            }
            None => {
                let maps: Vec<&[u32]> = (0..self.lattice.n_dims())
                    .map(|d| self.lattice.hierarchy(d).level_map(node.0[d]))
                    .collect();
                NodeTable::derive(&self.bottom, |sig| {
                    let mut out = 0u64;
                    for (d, map) in maps.iter().enumerate() {
                        let base = (sig >> self.shifts[d]) & self.masks[d];
                        out |= u64::from(map[base as usize]) << self.shifts[d];
                    }
                    out
                })
            }
        };
        self.derived.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(table);
        let mut memo = self.memo.write().expect("rollup memo poisoned");
        Arc::clone(memo.entry(node.clone()).or_insert(table))
    }
}

/// Bits needed to represent group ids `0..n` (0 for a single-group domain).
fn bits_for(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::hospital_table;

    fn hospital_lattice() -> (Table, GeneralizationLattice) {
        let table = hospital_table();
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        let lattice = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap();
        (table, lattice)
    }

    /// The roll-up result must equal the scan result at EVERY node: same
    /// bucket count, same bucket order, same histograms.
    #[test]
    fn rollup_matches_bucketize_at_every_node() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        for node in lattice.nodes() {
            let rolled = eval.histograms(&node).unwrap();
            let scanned = lattice.bucketize(&table, &node).unwrap();
            assert_eq!(rolled.n_buckets(), scanned.n_buckets(), "node {node}");
            assert_eq!(rolled.domain_size(), scanned.domain_size());
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                assert_eq!(
                    &rolled.histograms()[i],
                    bucket.histogram(),
                    "node {node} bucket {i}"
                );
            }
        }
    }

    #[test]
    fn single_scan_and_derivations_counted() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        for node in lattice.nodes() {
            eval.histograms(&node).unwrap();
        }
        // Repeat: everything above the bottom now memoized.
        for node in lattice.nodes() {
            eval.histograms(&node).unwrap();
        }
        let stats = eval.stats();
        assert_eq!(stats.table_scans, 1);
        assert_eq!(stats.derived as usize, lattice.n_nodes() - 1);
        assert_eq!(stats.memo_hits as usize, lattice.n_nodes() - 1);
        assert_eq!(stats.bottom_groups, 10); // hospital rows are all distinct
    }

    #[test]
    fn subset_matches_bucketize_subset() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0], vec![0]),
            (vec![1], vec![1]),
            (vec![2], vec![0]),
            (vec![0, 2], vec![1, 0]),
            (vec![0, 1, 2], vec![0, 2, 1]),
        ];
        for (dims, levels) in cases {
            let rolled = eval.histograms_subset(&dims, &levels).unwrap();
            let scanned = lattice.bucketize_subset(&table, &dims, &levels).unwrap();
            assert_eq!(
                rolled.n_buckets(),
                scanned.n_buckets(),
                "{dims:?}/{levels:?}"
            );
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                assert_eq!(&rolled.histograms()[i], bucket.histogram());
            }
        }
    }

    #[test]
    fn validates_nodes_and_subsets() {
        let (table, lattice) = hospital_lattice();
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        assert!(matches!(
            eval.histograms(&GenNode(vec![0, 0])),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms(&GenNode(vec![0, 9, 0])),
            Err(HierarchyError::LevelOutOfRange { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[0, 1], &[0]),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[7], &[0]),
            Err(HierarchyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            eval.histograms_subset(&[1], &[9]),
            Err(HierarchyError::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn wide_signatures_overflow_cleanly() {
        // Sex is a 2-value domain → 1 bit per dimension; 70 copies of it
        // need 70 bits, which must be rejected (callers then fall back to
        // the row-scanning path).
        let table = hospital_table();
        let sex = table.column(3).dictionary().clone();
        let dims: Vec<(usize, Hierarchy)> = (0..70)
            .map(|_| (3usize, Hierarchy::suppression("Sex", &sex)))
            .collect();
        let lattice = GeneralizationLattice::new(dims).unwrap();
        assert!(matches!(
            NodeEvaluator::new(&table, &lattice),
            Err(HierarchyError::SignatureOverflow { bits: 70 })
        ));
    }

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
    }
}
