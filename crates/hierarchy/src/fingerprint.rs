//! Content fingerprints for (table, lattice) pairs.
//!
//! A dataset-handle service needs a stable identity for "the same table
//! under the same hierarchies": registering the identical dataset twice
//! should return the **same** handle (and reuse the already-built roll-up
//! state), while any change to the rows, the schema roles, or a hierarchy's
//! grouping must produce a different one. [`dataset_fingerprint`] hashes
//! exactly that evidence — FNV-1a over:
//!
//! * the schema: every attribute's name and privacy role;
//! * the sensitive column: its dictionary values and per-row codes;
//! * every lattice dimension: its column index, attribute name, level count,
//!   each level's full base-code → group map, and the column's dictionary
//!   values and per-row codes.
//!
//! Dictionary *values* are included (not just codes) so tables that happen
//! to intern different strings to the same codes still differ. The walk is
//! `O(rows × dims + domain × levels)` — one more pass over columns already
//! resident in memory, done once at registration time.

use wcbk_table::Table;

use crate::GeneralizationLattice;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental FNV-1a hasher over bytes, with helpers for the shapes the
/// fingerprint mixes. Not cryptographic — a stable 64-bit identity for
/// handle lookup and dedup, like the engine's shard hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn codes(&mut self, codes: &[u32]) {
        self.u64(codes.len() as u64);
        for &c in codes {
            self.u64(u64::from(c));
        }
    }
}

/// The 64-bit content fingerprint of `table` under `lattice` — see the
/// module docs for what it covers. Stable across processes and platforms
/// (little-endian byte mixing, no pointer or hash-map iteration order).
pub fn dataset_fingerprint(table: &Table, lattice: &GeneralizationLattice) -> u64 {
    let mut h = Fnv::new();
    // Schema: names and roles, in column order.
    let schema = table.schema();
    h.u64(schema.arity() as u64);
    for attribute in schema.attributes() {
        h.str(attribute.name());
        h.byte(match attribute.kind() {
            wcbk_table::AttributeKind::Identifier => 1,
            wcbk_table::AttributeKind::QuasiIdentifier => 2,
            wcbk_table::AttributeKind::Sensitive => 3,
            wcbk_table::AttributeKind::Insensitive => 4,
        });
    }
    // The sensitive column: values and per-row codes.
    h.u64(table.n_rows() as u64);
    let sensitive = table.sensitive_column();
    for value in sensitive.dictionary().values() {
        h.str(value);
    }
    h.codes(sensitive.codes());
    // Every lattice dimension: structure plus the column it generalizes.
    h.u64(lattice.n_dims() as u64);
    for d in 0..lattice.n_dims() {
        let col = lattice.column(d);
        let hierarchy = lattice.hierarchy(d);
        h.u64(col as u64);
        h.str(hierarchy.attribute());
        h.u64(hierarchy.n_levels() as u64);
        for level in 0..hierarchy.n_levels() {
            h.codes(hierarchy.level_map(level));
        }
        let column = table.column(col);
        for value in column.dictionary().values() {
            h.str(value);
        }
        h.codes(column.codes());
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hierarchy;
    use wcbk_table::datasets::hospital_table;
    use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};

    fn hospital_lattice(table: &Table) -> GeneralizationLattice {
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
        ])
        .unwrap()
    }

    fn tiny_table(rows: &[[&str; 2]]) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Q", AttributeKind::QuasiIdentifier),
            Attribute::new("S", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for row in rows {
            b.push_row(row).unwrap();
        }
        b.build()
    }

    #[test]
    fn identical_inputs_fingerprint_identically() {
        let t1 = hospital_table();
        let t2 = hospital_table();
        let l1 = hospital_lattice(&t1);
        let l2 = hospital_lattice(&t2);
        assert_eq!(dataset_fingerprint(&t1, &l1), dataset_fingerprint(&t2, &l2));
    }

    #[test]
    fn row_value_and_hierarchy_changes_all_matter() {
        let base = tiny_table(&[["1", "flu"], ["2", "cold"]]);
        let dict = base.column(0).dictionary().clone();
        let lattice =
            GeneralizationLattice::new(vec![(0, Hierarchy::suppression("Q", &dict))]).unwrap();
        let fp = dataset_fingerprint(&base, &lattice);

        // Different rows.
        let other_rows = tiny_table(&[["1", "flu"], ["2", "flu"]]);
        let other_lattice = GeneralizationLattice::new(vec![(
            0,
            Hierarchy::suppression("Q", other_rows.column(0).dictionary()),
        )])
        .unwrap();
        assert_ne!(fp, dataset_fingerprint(&other_rows, &other_lattice));

        // Different dictionary values behind the same codes.
        let other_values = tiny_table(&[["1", "flu"], ["2", "measles"]]);
        let other_lattice = GeneralizationLattice::new(vec![(
            0,
            Hierarchy::suppression("Q", other_values.column(0).dictionary()),
        )])
        .unwrap();
        assert_ne!(fp, dataset_fingerprint(&other_values, &other_lattice));

        // Different hierarchy over the same table.
        let interval =
            GeneralizationLattice::new(vec![(0, Hierarchy::intervals("Q", &dict, &[2]).unwrap())])
                .unwrap();
        assert_ne!(fp, dataset_fingerprint(&base, &interval));
    }

    #[test]
    fn fingerprint_is_a_stable_constant() {
        // Pins cross-process stability: a fixed input hashes to a fixed
        // value. If this changes, persisted handle ids stop matching.
        let t = tiny_table(&[["1", "flu"], ["2", "cold"]]);
        let dict = t.column(0).dictionary().clone();
        let l = GeneralizationLattice::new(vec![(0, Hierarchy::suppression("Q", &dict))]).unwrap();
        let fp = dataset_fingerprint(&t, &l);
        assert_eq!(fp, dataset_fingerprint(&t, &l));
        assert_ne!(fp, 0);
    }
}
