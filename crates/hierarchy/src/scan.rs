//! The bottom-scan kernel: chunked columnar signature packing and tallying.
//!
//! [`NodeEvaluator`](crate::NodeEvaluator) construction performs exactly one
//! scan over the table. This module is that scan, rebuilt for million-row
//! tables:
//!
//! * **Batch packing** ([`pack_signatures`]): instead of a per-row chain of
//!   `with_field` calls, each dimension is OR-packed in its own pass over the
//!   contiguous `u32` code slice, with a fixed-width 8-row inner lane the
//!   compiler can autovectorize. Base-level codes always fit their field
//!   (the layout sizes each field for the *largest* level), so packing is a
//!   shift-and-OR — no masking on the write path.
//! * **Open-addressed group index** ([`SigMap`]): the per-row group lookup
//!   drops `std::collections::HashMap` (SipHash per probe) for a linear-probe
//!   table keyed by a multiply-shift hash of the packed signature. Insertion
//!   order is the group order, which keeps the first-row-occurrence bucket
//!   order `bucketize` defines.
//! * **Dense tallies** ([`ScanTallies`] / [`MergeTallies`]): sensitive counts
//!   accumulate into a flat `groups × domain` array when the sensitive domain
//!   is small (the common case — e.g. 14 occupations), falling back to
//!   sorted-run merges for large domains. Either way the output is the same
//!   value-sorted `(SValue, count)` rows the roll-up pipeline stores.
//! * **Chunked parallelism** ([`scan_kernel`]): rows are split into
//!   contiguous chunks scanned independently (each worker owns its packing
//!   buffer, map, and tallies), then partial results merge **in chunk index
//!   order**. A signature's global group position is therefore its first
//!   occurrence across the row order — bit-identical to the sequential scan
//!   at every chunk size and thread count.
//!
//! The pre-kernel row-at-a-time scan survives as [`scan_reference`]; it is
//! the equivalence baseline for proptests and the in-run ratio
//! `bench_report --scale` publishes.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wcbk_table::SValue;

/// A packed per-row quasi-identifier signature: one bit field per dimension,
/// wide enough for that dimension's largest per-level group id.
pub(crate) trait Signature: Copy + Eq + Hash + Send + Sync + 'static {
    /// Total bits available in this representation.
    const BITS: u32;
    fn zero() -> Self;
    /// Extracts the field at `shift` under `mask` as a group index.
    fn field(self, shift: u32, mask: u64) -> usize;
    /// Replaces the field at `shift` under `mask` with `group`.
    fn with_field(self, shift: u32, mask: u64, group: u32) -> Self;
    /// ORs `code` into the (all-zero) field at `shift` — the packing fast
    /// path; callers guarantee the field is zero and `code` fits it.
    fn or_field(self, shift: u32, code: u32) -> Self;
    /// Folds the signature to 64 bits for the open-addressed group index.
    fn hash64(self) -> u64;
}

impl Signature for u64 {
    const BITS: u32 = 64;

    fn zero() -> Self {
        0
    }

    #[inline]
    fn field(self, shift: u32, mask: u64) -> usize {
        ((self >> shift) & mask) as usize
    }

    #[inline]
    fn with_field(self, shift: u32, mask: u64, group: u32) -> Self {
        (self & !(mask << shift)) | (u64::from(group) << shift)
    }

    #[inline]
    fn or_field(self, shift: u32, code: u32) -> Self {
        self | (u64::from(code) << shift)
    }

    #[inline]
    fn hash64(self) -> u64 {
        self
    }
}

impl Signature for u128 {
    const BITS: u32 = 128;

    fn zero() -> Self {
        0
    }

    #[inline]
    fn field(self, shift: u32, mask: u64) -> usize {
        ((self >> shift) as u64 & mask) as usize
    }

    #[inline]
    fn with_field(self, shift: u32, mask: u64, group: u32) -> Self {
        (self & !(u128::from(mask) << shift)) | (u128::from(group) << shift)
    }

    #[inline]
    fn or_field(self, shift: u32, code: u32) -> Self {
        // A `u128` shift handles fields straddling the 64-bit boundary
        // (shift < 64 < shift + bits) in one operation.
        self | (u128::from(code) << shift)
    }

    #[inline]
    fn hash64(self) -> u64 {
        (self as u64) ^ ((self >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Inner lane width of the packing loop. Eight rows of `u64` fill one
/// 512-bit vector register; the fixed trip count lets the compiler unroll
/// and vectorize without a runtime remainder check per row.
const LANES: usize = 8;

/// OR-packs one dimension's codes into `sigs` at `shift`, 8 rows per lane.
#[inline]
fn or_pack<S: Signature>(sigs: &mut [S], codes: &[u32], shift: u32) {
    debug_assert_eq!(sigs.len(), codes.len());
    let mut sig_lanes = sigs.chunks_exact_mut(LANES);
    let mut code_lanes = codes.chunks_exact(LANES);
    for (s, c) in (&mut sig_lanes).zip(&mut code_lanes) {
        for j in 0..LANES {
            s[j] = s[j].or_field(shift, c[j]);
        }
    }
    for (s, &c) in sig_lanes
        .into_remainder()
        .iter_mut()
        .zip(code_lanes.remainder())
    {
        *s = s.or_field(shift, c);
    }
}

/// Packs rows `start..start + out.len()` into `out`, one columnar pass per
/// dimension over its contiguous code slice.
pub(crate) fn pack_signatures<S: Signature>(
    columns: &[&[u32]],
    shifts: &[u32],
    start: usize,
    out: &mut [S],
) {
    for sig in out.iter_mut() {
        *sig = S::zero();
    }
    for (codes, &shift) in columns.iter().zip(shifts) {
        or_pack(out, &codes[start..start + out.len()], shift);
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Fibonacci multiplier for the multiply-shift slot hash.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// An insertion-ordered signature → group-index map with open addressing
/// (linear probing over a power-of-two slot array). Insertion order is the
/// group order, which is what makes the scan's output bucket order equal
/// `bucketize`'s first-row-occurrence order.
pub(crate) struct SigMap<S> {
    /// Groups in first-insertion order.
    sigs: Vec<S>,
    /// Slot array: group index or `EMPTY_SLOT`.
    slots: Vec<u32>,
    /// `64 - log2(slots.len())`, so `hash >> shift` is a slot index.
    shift: u32,
}

impl<S: Signature> SigMap<S> {
    pub(crate) fn with_capacity(groups: usize) -> Self {
        let slots = (groups.max(8).saturating_mul(8) / 7)
            .next_power_of_two()
            .max(16);
        Self {
            sigs: Vec::with_capacity(groups),
            slots: vec![EMPTY_SLOT; slots],
            shift: 64 - slots.trailing_zeros(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.sigs.len()
    }

    #[cfg(test)]
    pub(crate) fn sigs(&self) -> &[S] {
        &self.sigs
    }

    pub(crate) fn into_sigs(self) -> Vec<S> {
        self.sigs
    }

    /// The group index of `sig`, inserting it as a new group when unseen.
    #[inline]
    pub(crate) fn get_or_insert(&mut self, sig: S) -> usize {
        // Keep load factor under 7/8 (checked before probing so the probe
        // loop always finds an empty slot).
        if (self.sigs.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (sig.hash64().wrapping_mul(HASH_MUL) >> self.shift) as usize;
        loop {
            let g = self.slots[i];
            if g == EMPTY_SLOT {
                let gi = self.sigs.len();
                self.slots[i] = gi as u32;
                self.sigs.push(sig);
                return gi;
            }
            if self.sigs[g as usize] == sig {
                return g as usize;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let slots = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(slots, EMPTY_SLOT);
        self.shift = 64 - slots.trailing_zeros();
        let mask = slots - 1;
        for (gi, sig) in self.sigs.iter().enumerate() {
            let mut i = (sig.hash64().wrapping_mul(HASH_MUL) >> self.shift) as usize;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = gi as u32;
        }
    }
}

/// Sensitive domains up to this cardinality tally into dense per-group rows
/// (`domain × 8` bytes per group); larger domains use sorted sparse rows.
/// The paper's workloads sit far below this (hospital: 4, Adult: 14).
pub(crate) const DENSE_DOMAIN_MAX: usize = 64;

/// Per-row tally accumulator for the scan: dense rows for small sensitive
/// domains, unsorted append (sorted and aggregated at `finish`) otherwise.
pub(crate) struct ScanTallies {
    domain: usize,
    dense: bool,
    /// Group-major flat dense counts (`dense` only).
    flat: Vec<u64>,
    /// Per-group unsorted `(value, 1)` appends (sparse only).
    rows: Vec<Vec<(SValue, u64)>>,
    n_groups: usize,
}

impl ScanTallies {
    pub(crate) fn new(domain: usize) -> Self {
        Self {
            domain,
            dense: domain > 0 && domain <= DENSE_DOMAIN_MAX,
            flat: Vec::new(),
            rows: Vec::new(),
            n_groups: 0,
        }
    }

    /// Adds one row with sensitive `value` to `group`. `group` is at most
    /// the current group count (i.e. groups appear in index order).
    #[inline]
    pub(crate) fn bump(&mut self, group: usize, value: SValue) {
        if group == self.n_groups {
            self.n_groups += 1;
            if self.dense {
                self.flat.resize(self.n_groups * self.domain, 0);
            } else {
                self.rows.push(Vec::new());
            }
        }
        if self.dense {
            self.flat[group * self.domain + value.index()] += 1;
        } else {
            self.rows[group].push((value, 1));
        }
    }

    /// Value-sorted `(value, count)` rows per group.
    pub(crate) fn finish(self) -> Vec<Vec<(SValue, u64)>> {
        if self.dense {
            dense_to_sorted(&self.flat, self.domain, self.n_groups)
        } else {
            self.rows
                .into_iter()
                .map(|mut row| {
                    row.sort_unstable_by_key(|&(value, _)| value);
                    aggregate_sorted(&mut row);
                    row
                })
                .collect()
        }
    }
}

/// Tally accumulator for merges (chunk merge, node derivation): inputs are
/// already value-sorted rows, so the sparse fallback is a linear two-pointer
/// merge — no hash re-insertion anywhere.
pub(crate) struct MergeTallies {
    domain: usize,
    dense: bool,
    flat: Vec<u64>,
    rows: Vec<Vec<(SValue, u64)>>,
    n_groups: usize,
}

impl MergeTallies {
    pub(crate) fn new(domain: usize) -> Self {
        Self {
            domain,
            dense: domain > 0 && domain <= DENSE_DOMAIN_MAX,
            flat: Vec::new(),
            rows: Vec::new(),
            n_groups: 0,
        }
    }

    /// Merges a value-sorted count row into `group`.
    pub(crate) fn add_sorted(&mut self, group: usize, pairs: &[(SValue, u64)]) {
        if group == self.n_groups {
            self.n_groups += 1;
            if self.dense {
                self.flat.resize(self.n_groups * self.domain, 0);
            } else {
                self.rows.push(Vec::new());
            }
        }
        if self.dense {
            let row = &mut self.flat[group * self.domain..(group + 1) * self.domain];
            for &(value, count) in pairs {
                row[value.index()] += count;
            }
        } else {
            merge_sorted(&mut self.rows[group], pairs);
        }
    }

    /// Value-sorted `(value, count)` rows per group.
    pub(crate) fn finish(self) -> Vec<Vec<(SValue, u64)>> {
        if self.dense {
            dense_to_sorted(&self.flat, self.domain, self.n_groups)
        } else {
            self.rows
        }
    }
}

/// Converts flat dense rows to sparse value-sorted rows (ascending value
/// iteration yields the sorted order for free).
fn dense_to_sorted(flat: &[u64], domain: usize, n_groups: usize) -> Vec<Vec<(SValue, u64)>> {
    (0..n_groups)
        .map(|g| {
            flat[g * domain..(g + 1) * domain]
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(value, &count)| (SValue(value as u32), count))
                .collect()
        })
        .collect()
}

/// Collapses equal-value runs of a value-sorted row in place.
fn aggregate_sorted(row: &mut Vec<(SValue, u64)>) {
    let mut out = 0;
    for i in 0..row.len() {
        if out > 0 && row[out - 1].0 == row[i].0 {
            row[out - 1].1 += row[i].1;
        } else {
            row[out] = row[i];
            out += 1;
        }
    }
    row.truncate(out);
}

/// Two-pointer merge of value-sorted count rows: `dst += src`.
fn merge_sorted(dst: &mut Vec<(SValue, u64)>, src: &[(SValue, u64)]) {
    if dst.is_empty() {
        dst.extend_from_slice(src);
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        match dst[i].0.cmp(&src[j].0) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push((dst[i].0, dst[i].1 + src[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&src[j..]);
    *dst = merged;
}

/// The scan's output: distinct signatures in first-row-occurrence order and
/// their value-sorted sensitive count rows, plus per-chunk wall timings
/// (one entry per chunk in chunk index order; a single entry for the
/// reference or single-chunk scan) for phase profiling.
pub(crate) struct ScanResult<S> {
    pub(crate) sigs: Vec<S>,
    pub(crate) counts: Vec<Vec<(SValue, u64)>>,
    pub(crate) chunk_micros: Vec<u64>,
}

/// One chunk's partial scan, in the chunk's own first-occurrence order.
struct ChunkScan<S> {
    sigs: Vec<S>,
    counts: Vec<Vec<(SValue, u64)>>,
    /// Wall time this chunk's scan took, in microseconds.
    micros: u64,
}

/// Default rows per chunk: large enough to amortize per-chunk map and tally
/// setup, small enough that per-chunk buffers stay cache- and
/// memory-friendly.
pub(crate) const DEFAULT_CHUNK_ROWS: usize = 65_536;

fn scan_chunk<S: Signature>(
    columns: &[&[u32]],
    shifts: &[u32],
    sensitive: &[u32],
    domain: usize,
    start: usize,
    end: usize,
) -> ChunkScan<S> {
    let started = std::time::Instant::now();
    let mut sig_buf = vec![S::zero(); end - start];
    pack_signatures(columns, shifts, start, &mut sig_buf);
    let mut map = SigMap::with_capacity((end - start).min(1024));
    let mut tallies = ScanTallies::new(domain);
    for (i, &sig) in sig_buf.iter().enumerate() {
        let group = map.get_or_insert(sig);
        tallies.bump(group, SValue(sensitive[start + i]));
    }
    ChunkScan {
        sigs: map.into_sigs(),
        counts: tallies.finish(),
        micros: started.elapsed().as_micros() as u64,
    }
}

/// Merges per-chunk partials **in chunk index order**: a signature's global
/// group position is its first occurrence over the whole row order, so the
/// merged result is bit-identical to a single sequential scan.
fn merge_chunks<S: Signature>(chunks: Vec<ChunkScan<S>>, domain: usize) -> ScanResult<S> {
    let groups_hint = chunks.iter().map(|c| c.sigs.len()).max().unwrap_or(0);
    let chunk_micros: Vec<u64> = chunks.iter().map(|c| c.micros).collect();
    let mut map = SigMap::with_capacity(groups_hint);
    let mut tallies = MergeTallies::new(domain);
    for chunk in chunks {
        for (local, sig) in chunk.sigs.into_iter().enumerate() {
            let group = map.get_or_insert(sig);
            tallies.add_sorted(group, &chunk.counts[local]);
        }
    }
    ScanResult {
        sigs: map.into_sigs(),
        counts: tallies.finish(),
        chunk_micros,
    }
}

/// The chunked columnar scan. `threads == 1` (or a single chunk) runs
/// entirely on the calling thread; otherwise `threads` workers claim chunks
/// from a shared counter and the partials merge deterministically. Output is
/// bit-identical across every `chunk_rows`/`threads` combination.
pub(crate) fn scan_kernel<S: Signature>(
    columns: &[&[u32]],
    shifts: &[u32],
    sensitive: &[u32],
    domain: usize,
    chunk_rows: usize,
    threads: usize,
) -> ScanResult<S> {
    let n_rows = sensitive.len();
    let chunk_rows = if chunk_rows == 0 {
        // Auto sizing: big enough that each worker sees at most two chunks —
        // merging partials is pure overhead, so don't create more of them
        // than load balancing needs. Chunk geometry is bit-neutral either
        // way; only the merge count changes.
        let per_worker = n_rows.div_ceil(threads.max(1) * 2);
        DEFAULT_CHUNK_ROWS.max(per_worker)
    } else {
        chunk_rows
    };
    let n_chunks = n_rows.div_ceil(chunk_rows).max(1);
    let bounds = |ci: usize| (ci * chunk_rows, ((ci + 1) * chunk_rows).min(n_rows));

    if n_chunks == 1 {
        // A lone chunk's local first-occurrence order IS the global order.
        let chunk = scan_chunk(columns, shifts, sensitive, domain, 0, n_rows);
        return ScanResult {
            sigs: chunk.sigs,
            counts: chunk.counts,
            chunk_micros: vec![chunk.micros],
        };
    }

    let threads = threads.max(1).min(n_chunks);
    let chunks: Vec<ChunkScan<S>> = if threads == 1 {
        (0..n_chunks)
            .map(|ci| {
                let (start, end) = bounds(ci);
                scan_chunk(columns, shifts, sensitive, domain, start, end)
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<ChunkScan<S>>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let ci = next.fetch_add(1, Ordering::Relaxed);
                    if ci >= n_chunks {
                        break;
                    }
                    let (start, end) = bounds(ci);
                    let chunk = scan_chunk(columns, shifts, sensitive, domain, start, end);
                    *results[ci].lock().expect("chunk slot poisoned") = Some(chunk);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("chunk slot poisoned")
                    .expect("every chunk index was claimed")
            })
            .collect()
    };
    merge_chunks(chunks, domain)
}

/// The pre-kernel row-at-a-time scan (per-row `with_field` chain, std
/// `HashMap` group index and tallies), kept as the equivalence and
/// throughput baseline.
pub(crate) fn scan_reference<S: Signature>(
    columns: &[&[u32]],
    shifts: &[u32],
    masks: &[u64],
    sensitive: &[u32],
) -> ScanResult<S> {
    let started = std::time::Instant::now();
    let mut index: HashMap<S, usize> = HashMap::new();
    let mut sigs: Vec<S> = Vec::new();
    let mut tallies: Vec<HashMap<SValue, u64>> = Vec::new();
    for row in 0..sensitive.len() {
        let mut sig = S::zero();
        for (d, codes) in columns.iter().enumerate() {
            sig = sig.with_field(shifts[d], masks[d], codes[row]);
        }
        let gi = *index.entry(sig).or_insert_with(|| {
            sigs.push(sig);
            tallies.push(HashMap::new());
            sigs.len() - 1
        });
        *tallies[gi].entry(SValue(sensitive[row])).or_insert(0) += 1;
    }
    let counts = tallies
        .into_iter()
        .map(|tally| {
            let mut row: Vec<(SValue, u64)> = tally.into_iter().collect();
            row.sort_unstable_by_key(|&(value, _)| value);
            row
        })
        .collect();
    ScanResult {
        sigs,
        counts,
        chunk_micros: vec![started.elapsed().as_micros() as u64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same<S: Signature + std::fmt::Debug>(a: &ScanResult<S>, b: &ScanResult<S>) {
        assert_eq!(a.sigs, b.sigs);
        assert_eq!(a.counts, b.counts);
    }

    /// A small deterministic workload with group repeats across chunk
    /// boundaries and a couple of distinct sensitive values.
    fn workload(n_rows: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let col_a: Vec<u32> = (0..n_rows).map(|r| (r % 5) as u32).collect();
        let col_b: Vec<u32> = (0..n_rows).map(|r| ((r / 3) % 4) as u32).collect();
        let sensitive: Vec<u32> = (0..n_rows).map(|r| (r % 3) as u32).collect();
        (col_a, col_b, sensitive)
    }

    #[test]
    fn kernel_matches_reference_across_chunk_sizes_and_threads() {
        let (a, b, s) = workload(157);
        let columns: Vec<&[u32]> = vec![&a, &b];
        let shifts = [0u32, 3];
        let masks = [0b111u64, 0b11];
        let reference = scan_reference::<u64>(&columns, &shifts, &masks, &s);
        for chunk_rows in [1usize, 2, 3, 7, 16, 64, 157, 1000] {
            for threads in [1usize, 2, 4] {
                let kernel = scan_kernel::<u64>(&columns, &shifts, &s, 3, chunk_rows, threads);
                assert_same(&reference, &kernel);
            }
        }
    }

    #[test]
    fn sparse_domain_falls_back_and_still_matches() {
        let n = 300;
        let a: Vec<u32> = (0..n).map(|r| (r % 7) as u32).collect();
        // Sensitive domain larger than DENSE_DOMAIN_MAX forces the sparse
        // tally path in both scan and merge.
        let s: Vec<u32> = (0..n).map(|r| ((r * 13) % 100) as u32).collect();
        let columns: Vec<&[u32]> = vec![&a];
        let shifts = [0u32];
        let masks = [0b111u64];
        let reference = scan_reference::<u64>(&columns, &shifts, &masks, &s);
        for chunk_rows in [4usize, 37, 300] {
            let kernel = scan_kernel::<u64>(&columns, &shifts, &s, 100, chunk_rows, 2);
            assert_same(&reference, &kernel);
        }
    }

    #[test]
    fn u128_field_straddles_the_64_bit_boundary() {
        // One dimension shifted to bit 62 with 3-bit codes: the field spans
        // bits 62..65, crossing the u64/u128 boundary inside or_field.
        let n = 97;
        let a: Vec<u32> = (0..n).map(|r| (r % 2) as u32).collect();
        let b: Vec<u32> = (0..n).map(|r| (r % 6) as u32).collect();
        let columns: Vec<&[u32]> = vec![&a, &b];
        let shifts = [0u32, 62];
        let masks = [0b1u64, 0b111];
        let reference = scan_reference::<u128>(&columns, &shifts, &masks, &a);
        for chunk_rows in [5usize, 64, 97] {
            let kernel = scan_kernel::<u128>(&columns, &shifts, &a, 2, chunk_rows, 2);
            assert_same(&reference, &kernel);
        }
        // The straddling field really is written above bit 63.
        assert!(reference.sigs.iter().any(|&sig| sig >> 64 != 0));
    }

    #[test]
    fn sigmap_preserves_insertion_order_and_grows() {
        let mut map = SigMap::<u64>::with_capacity(0);
        for i in 0..1000u64 {
            assert_eq!(map.get_or_insert(i * 7), i as usize);
        }
        for i in 0..1000u64 {
            assert_eq!(map.get_or_insert(i * 7), i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.sigs()[3], 21);
    }

    #[test]
    fn merge_sorted_accumulates_overlaps() {
        let mut dst = vec![(SValue(1), 2u64), (SValue(3), 1)];
        merge_sorted(&mut dst, &[(SValue(0), 5), (SValue(3), 4), (SValue(9), 1)]);
        assert_eq!(
            dst,
            vec![
                (SValue(0), 5),
                (SValue(1), 2),
                (SValue(3), 5),
                (SValue(9), 1)
            ]
        );
    }

    #[test]
    fn empty_table_scans_to_zero_groups() {
        let columns: Vec<&[u32]> = vec![&[]];
        let kernel = scan_kernel::<u64>(&columns, &[0], &[], 4, 8, 4);
        assert!(kernel.sigs.is_empty());
        assert!(kernel.counts.is_empty());
    }
}
