//! # wcbk-hierarchy — full-domain generalization substrate
//!
//! The paper's experiments (Section 4) anonymize by *full-domain
//! generalization* [Samarati & Sweeney; LeFevre et al. "Incognito"]: each
//! quasi-identifier attribute has a **domain generalization hierarchy** (DGH)
//! of nested coarsenings, and an anonymization picks one level per attribute.
//! The set of such choices forms a lattice; under full identification
//! information, applying a lattice node to a table yields exactly a
//! bucketization (tuples with equal generalized quasi-identifiers share a
//! bucket), so the (c,k)-safety machinery of `wcbk-core` applies directly.
//!
//! * [`Hierarchy`] — one attribute's DGH: per-level maps from base dictionary
//!   codes to group labels, with nestedness validated at construction.
//!   Builders: [`Hierarchy::suppression`], [`Hierarchy::intervals`] (numeric
//!   attributes), [`Hierarchy::from_groups`] (categorical trees).
//! * [`GenNode`] / [`GeneralizationLattice`] — the product lattice over all
//!   quasi-identifiers: node enumeration, covers (successors/predecessors),
//!   chains, and [`GeneralizationLattice::bucketize`] which applies a node to
//!   a table.
//! * [`NodeEvaluator`] — the roll-up evaluation pipeline: one columnar table
//!   scan materializes the bottom node's signature → histogram map; every
//!   other node's histograms are derived by re-keying packed signatures
//!   through parent/level maps and merging — `O(groups)` per node, no row
//!   access, identical bucket order and histograms to `bucketize`.
//! * [`dataset_fingerprint`] — a stable 64-bit content identity for a
//!   (table, lattice) pair: schema roles, hierarchy grouping maps,
//!   dictionaries, and row codes all mixed in — what a dataset-handle
//!   service keys registrations by ("register once, audit forever").
//! * [`encode_dataset`] / [`decode_dataset`] and [`encode_node`] /
//!   [`decode_node`] — the stable binary format the durable catalog
//!   persists datasets and release records in; a decoded dataset
//!   fingerprints bit-identically to the encoded one.
//! * [`adult`] — the paper's Adult hierarchies: Age 6 levels (exact, 5, 10,
//!   20, 40, suppressed), Marital Status 3 levels, Race 2, Gender 2 — a
//!   6·3·2·2 = 72-node lattice.

pub mod adult;
mod dgh;
mod error;
mod fingerprint;
mod lattice;
mod rollup;
mod scan;
mod serial;

pub use dgh::Hierarchy;
pub use error::HierarchyError;
pub use fingerprint::dataset_fingerprint;
pub use lattice::{GenNode, GeneralizationLattice};
pub use rollup::{NodeEvaluator, RollupStats, ScanOptions};
pub use serial::{decode_dataset, decode_node, encode_dataset, encode_node};
