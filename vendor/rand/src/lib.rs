//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! exactly the API surface the `wcbk` crates use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen_range` (integer and `f64` ranges) and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, statistically solid for the synthetic-data and sampling
//! workloads in this repository, and *not* a cryptographic generator (the
//! real `rand::rngs::StdRng` is ChaCha-based; streams differ, so seeds are
//! reproducible only within this shim).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`; `NaN` → `false`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p.is_nan() {
            return false;
        }
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer below `n` (> 0) by rejection sampling (no modulo bias).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: span + 1 would wrap to 0.
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: span + 1 would wrap to 0.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0u64..=u64::MAX - 1),
                b.gen_range(0u64..=u64::MAX - 1)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0..u64::MAX), c.gen_range(0..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let b = rng.gen_range(0u32..1);
            assert_eq!(b, 0);
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = rng.gen_range(isize::MIN..=isize::MAX);
            let _ = rng.gen_range(u64::MIN..=u64::MAX);
            let _ = rng.gen_range(i8::MIN..=i8::MAX);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 100_000;
        let heads = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let freq = heads as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }
}
