//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the `wcbk` property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`/`boxed`, integer/char
//! range strategies, tuples, [`strategy::Just`], `prop::collection::vec`,
//! `prop_oneof!`, the `proptest!` test macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message; the
//!   inputs are whatever the deterministic generator produced.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test run configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip the case, draw another.
        Reject(String),
        /// `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        /// A failure (property violated).
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// The deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from an arbitrary label (the macro passes the test's path).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from a non-empty list of arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    sample_int_range(rng, self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    sample_int_range(rng, *self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

    /// Uniform `i128` in `[lo, hi]` (spans here always fit in a `u64`).
    fn sample_int_range(rng: &mut TestRng, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo) as u128;
        assert!(span < u64::MAX as u128, "range too wide for the shim");
        lo + i128::from(rng.gen_range(0..=span as u64))
    }

    /// Tuple strategies: each component sampled independently.
    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Character-range strategy (see [`crate::char::range`]).
    #[derive(Debug, Clone)]
    pub struct CharRange {
        pub(crate) lo: char,
        pub(crate) hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            // The tests only use contiguous scalar ranges ('a'..'z', '0'..'9').
            let lo = self.lo as u32;
            let hi = self.hi as u32;
            char::from_u32(rng.gen_range(lo..=hi)).expect("valid char range")
        }
    }

    /// `prop::collection::vec` strategy.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{Strategy, VecStrategy};

    /// Accepted size arguments for [`vec()`]: `n`, `a..b`, `a..=b`.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }
}

pub mod char {
    use crate::strategy::CharRange;

    /// Uniform `char` in the inclusive scalar range `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used by strategy expressions.
    pub mod prop {
        pub use crate::char;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!("proptest case failed (after {accepted} passing cases): {msg}"),
                }
            }
            assert!(
                accepted > 0,
                "proptest rejected every generated case ({attempts} attempts)"
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec(0u32..5, 1..=8), y in -3i64..=3) {
            prop_assert!(!xs.is_empty() && xs.len() <= 8);
            prop_assert!(xs.iter().all(|&x| x < 5));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn maps_tuples_and_oneof(
            s in prop::collection::vec(
                prop_oneof![prop::char::range('a', 'c'), Just('!')],
                0..6,
            ).prop_map(|cs| cs.into_iter().collect::<String>()),
            (a, b) in (0u8..4, 10u8..12),
        ) {
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '!'));
            prop_assert!(a < 4 && (10..12).contains(&b));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(n in 0u32..2) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        inner();
    }
}
