//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API the `wcbk-bench` targets use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs one timed warm-up
//! call, then an **adaptive** number of timed iterations chosen so each
//! benchmark fills a target wall-time budget (default 200 ms, override with
//! `WCBK_BENCH_TARGET_MS`), clamped to `[MIN_ITERS, MAX_ITERS]`. Fast
//! sub-microsecond routines therefore get thousands of samples instead of
//! under-sampling at a fixed count, while slow multi-second routines stay at
//! the floor. Good enough to compare orders of magnitude and exercise every
//! bench path in CI; not a substitute for real criterion when the registry
//! is reachable.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Fewest timed iterations per benchmark, however slow the routine.
const MIN_ITERS: u32 = 10;

/// Most timed iterations per benchmark, however fast the routine.
const MAX_ITERS: u32 = 100_000;

/// Wall-time budget one benchmark's timed iterations aim to fill.
fn target_time() -> Duration {
    static TARGET: OnceLock<Duration> = OnceLock::new();
    *TARGET.get_or_init(|| {
        let ms = std::env::var("WCBK_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Duration::from_millis(ms.max(1))
    })
}

/// Top-level harness handle passed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    /// Benchmarks a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's parameterized-bench convention.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifies solely by the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Throughput hint (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the bench closure; `iter` does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: timed warm-up calls estimate the per-iteration
    /// cost, which sets the iteration budget (`target_time / estimate`,
    /// clamped to `[MIN_ITERS, MAX_ITERS]`); every budgeted call is then
    /// timed individually.
    ///
    /// The estimate is the **fastest** of up to three warm-up calls (routines
    /// already slower than the target get one), so a single cold-start or
    /// scheduler preemption cannot collapse the budget of a fast routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut estimate = Duration::MAX;
        for _ in 0..3 {
            let warmup = Instant::now();
            black_box(routine());
            estimate = estimate.min(warmup.elapsed().max(Duration::from_nanos(1)));
            if estimate >= target_time() {
                break;
            }
        }
        let budget = (target_time().as_nanos() / estimate.as_nanos())
            .clamp(u128::from(MIN_ITERS), u128::from(MAX_ITERS)) as u32;
        self.samples.clear();
        for _ in 0..budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let fastest = *bencher.samples.iter().min().expect("non-empty");
    println!(
        "{label:<50} mean {:>12?}   fastest {:>12?}   ({} iters)",
        mean,
        fastest,
        bencher.samples.len()
    );
}

/// Registers bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        // 1–3 warm-ups + an adaptive number of timed calls within the clamp.
        assert!(
            (MIN_ITERS + 1..=MAX_ITERS + 3).contains(&calls),
            "{calls} calls outside [{}, {}]",
            MIN_ITERS + 1,
            MAX_ITERS + 3
        );
    }

    #[test]
    fn fast_routines_get_more_samples_than_the_old_fixed_ten() {
        // A sub-microsecond routine must not under-sample at 10 iterations.
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64.wrapping_add(2)));
        assert!(
            b.samples.len() > 10,
            "only {} samples for a nanosecond routine",
            b.samples.len()
        );
    }

    #[test]
    fn slow_routines_stay_at_the_minimum() {
        let mut b = Bencher::default();
        // Far above any plausible target budget per iteration.
        b.iter(|| std::thread::sleep(Duration::from_millis(25)));
        assert_eq!(b.samples.len(), MIN_ITERS as usize);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(3));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("id", |b| b.iter(|| black_box(7)));
        group.finish();
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_wire_up() {
        demo_group();
    }
}
