//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API the `wcbk-bench` targets use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs a short warm-up, then
//! a fixed number of timed iterations per benchmark, printing mean and
//! fastest wall-clock time. Good enough to compare orders of magnitude and
//! exercise every bench path in CI; not a substitute for real criterion when
//! the registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per benchmark (after one untimed warm-up call).
const TIMED_ITERS: u32 = 10;

/// Top-level harness handle passed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    /// Benchmarks a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's parameterized-bench convention.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifies solely by the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Throughput hint (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the bench closure; `iter` does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then [`TIMED_ITERS`] timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..TIMED_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let fastest = *bencher.samples.iter().min().expect("non-empty");
    println!(
        "{label:<50} mean {:>12?}   fastest {:>12?}   ({} iters)",
        mean,
        fastest,
        bencher.samples.len()
    );
}

/// Registers bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        // 1 warm-up + TIMED_ITERS timed.
        assert_eq!(calls, TIMED_ITERS + 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(3));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("id", |b| b.iter(|| black_box(7)));
        group.finish();
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_wire_up() {
        demo_group();
    }
}
